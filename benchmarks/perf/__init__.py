"""Performance harness comparing the object and numpy frame backends."""
