"""E2 — Fig. 7: overall fidelity of GReaTER vs DEREC vs direct flattening.

The paper's headline result: across the independent task-ID trials, GReaTER's
per-pair KS p-value distribution has a heavier right tail than both the DEREC
benchmark (child tables treated independently) and direct flattening.
"""

from benchmarks.conftest import print_rows
from repro.experiments.figures import fig7_overall_fidelity


def test_fig7_overall_fidelity(benchmark, experiment_config):
    outcome = benchmark.pedantic(
        fig7_overall_fidelity, kwargs={"config": experiment_config}, rounds=1, iterations=1
    )
    print_rows("Fig. 7 — overall synthetic fidelity (KS p-value)", outcome["rows"])

    rows = {row["configuration"]: row for row in outcome["rows"]}
    greater = rows["greater"]
    derec = rows["derec"]
    flatten = rows["direct_flatten"]

    # GReaTER beats the DEREC benchmark on the paper's primary score
    assert greater["mean_p_value"] > derec["mean_p_value"]
    # GReaTER is at least as good as direct flattening on the right-tail mass
    assert greater["frac_p_above_0.05"] >= flatten["frac_p_above_0.05"] - 0.02
    # every configuration scored the same pairs on the same trials
    assert greater["pairs"] == derec["pairs"] == flatten["pairs"]
