"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation by
calling the corresponding function in :mod:`repro.experiments.figures`, prints
the rows it produces (the same rows/series the paper reports) and asserts the
qualitative shape discussed in EXPERIMENTS.md.

The experiment size is controlled by ``REPRO_BENCH_SCALE`` (default 1, a quick
run finishing in minutes); raise it to move toward the paper's eight trials of
750+ observations.
"""

import sys

import pytest

from repro.experiments.harness import ExperimentConfig


@pytest.fixture(scope="session")
def experiment_config():
    """The experiment size shared by all figure benchmarks."""
    return ExperimentConfig.from_scale()


def print_rows(title, rows):
    """Print experiment rows as an aligned table under a heading.

    Output goes to the real stdout (bypassing pytest's capture) so the rows
    are visible in the terminal / tee'd log even when the benchmark passes.
    """
    lines = ["", "=== {} ===".format(title)]
    if not rows:
        lines.append("(no rows)")
    else:
        keys = list(rows[0].keys())
        widths = {
            key: max(len(str(key)), max(len(str(row.get(key, ""))) for row in rows))
            for key in keys
        }
        lines.append("  ".join(str(key).ljust(widths[key]) for key in keys))
        for row in rows:
            lines.append("  ".join(str(row.get(key, "")).ljust(widths[key]) for key in keys))
    text = "\n".join(lines) + "\n"
    print(text, end="")
    sys.__stdout__.write(text)
    sys.__stdout__.flush()
