"""E6 — Fig. 2: ambiguous numerical labels collapse to shared tokens.

Regenerates the quantitative form of the Fig. 2 illustration: on the toy table
the repeated '1's are shared across three unrelated columns before the
enhancement and across none afterwards.
"""

from benchmarks.conftest import print_rows
from repro.experiments.figures import fig2_token_ambiguity


def test_fig2_token_ambiguity(benchmark):
    outcome = benchmark.pedantic(fig2_token_ambiguity, rounds=1, iterations=1)
    print_rows("Fig. 2 — token ambiguity before/after enhancement", outcome["rows"])

    before, after = outcome["rows"]
    assert before["shared_tokens"] > 0, "the original labels must collide across columns"
    assert after["shared_tokens"] == 0, "the enhancement must remove every collision"
    assert before["mean_context_entropy_of_shared_tokens"] > 0.0
