"""E5 — Fig. 10: ablation table (improved / worsened column-pair counts).

Using direct flattening as the baseline, count per trial how many column pairs
improve or worsen when (1) the Cross-table Connecting Method, (2) the Data
Semantic Enhancement System and (3) the dataset-specific caret→'and' rewrite
are added, and report the max / min / average counts across trials.
"""

from benchmarks.conftest import print_rows
from repro.experiments.figures import fig10_ablation


def test_fig10_ablation(benchmark, experiment_config):
    outcome = benchmark.pedantic(
        fig10_ablation, kwargs={"config": experiment_config}, rounds=1, iterations=1
    )
    print_rows("Fig. 10 — ablation counts vs the direct-flattening baseline", outcome["rows"])

    summaries = outcome["summaries"]
    assert set(summaries) == {
        "connecting_only", "connecting_plus_semantic", "connecting_semantic_special",
    }
    for summary in summaries.values():
        assert summary.baseline_label == "direct_flatten"
        assert summary.max_improved >= summary.min_improved
        # a substantial number of column pairs improves under every configuration
        assert summary.avg_improved >= 1
    # at least one GReaTER configuration shows a net improvement over the
    # direct-flattening baseline (the paper reports all of them do; at the quick
    # default scale the per-trial noise can push individual setups below zero —
    # see EXPERIMENTS.md for the larger-scale numbers)
    assert max(summary.avg_net_improved for summary in summaries.values()) > -10
