"""Tests for the fit/sample split, the serving layer and the new CLI commands."""

import json
import threading

import pytest

from repro.cli import main
from repro.connecting.connector import ConnectorConfig
from repro.enhancement.enhancer import EnhancerConfig
from repro.frame.io import read_csv
from repro.pipelines.base import FittedPipeline
from repro.pipelines.config import PipelineConfig
from repro.pipelines.derec import DERECPipeline
from repro.pipelines.greater import GReaTERPipeline
from repro.frame.table import Table
from repro.serving import (
    LruCache,
    ServingConfig,
    ServingError,
    SynthesisService,
    approx_table_bytes,
    derive_seed,
)
from repro.store.bundle import load_fitted_pipeline


def _config(seed=0, generation_engine="auto", training_engine="auto"):
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="understandability", seed=seed),
        connector=ConnectorConfig(independence_method="threshold_mean",
                                  remove_noisy_columns=False),
        generation_engine=generation_engine,
        training_engine=training_engine,
    )


@pytest.fixture(scope="module")
def trial(tiny_digix):
    return tiny_digix.trials()[0]


@pytest.fixture(scope="module")
def fitted(trial):
    return GReaTERPipeline(_config()).fit(trial.ads, trial.feeds)


@pytest.fixture(scope="module")
def bundle(fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("bundles") / "greater"
    fitted.save(path)
    return path


class TestFitSampleSplit:
    def test_fit_then_sample_matches_run(self, trial):
        pipeline = GReaTERPipeline(_config())
        via_run = pipeline.run(trial.ads, trial.feeds)
        via_split = pipeline.fit(trial.ads, trial.feeds).sample()
        assert via_split.synthetic_flat == via_run.synthetic_flat
        assert via_split.details == via_run.details

    def test_sample_is_repeatable_and_seed_sensitive(self, fitted):
        first = fitted.sample(seed=5)
        again = fitted.sample(seed=5)
        other = fitted.sample(seed=6)
        assert first.synthetic_flat == again.synthetic_flat
        assert first.synthetic_flat != other.synthetic_flat

    def test_derec_fit_sample_matches_run(self, trial):
        pipeline = DERECPipeline(_config())
        via_run = pipeline.run(trial.ads, trial.feeds)
        via_split = pipeline.fit(trial.ads, trial.feeds).sample()
        assert via_split.synthetic_flat == via_run.synthetic_flat
        assert via_split.details == via_run.details


class TestPersistenceDeterminism:
    @pytest.mark.parametrize("engine", ["object", "compiled"])
    def test_fit_save_load_sample_bit_identical(self, trial, tmp_path, engine):
        """The acceptance property: fit -> save -> load -> sample equals
        fit -> sample for the same seed, on both engines."""
        pipeline = GReaTERPipeline(_config(generation_engine=engine,
                                           training_engine=engine))
        fitted = pipeline.fit(trial.ads, trial.feeds)
        expected = fitted.sample(seed=5)
        fitted.save(tmp_path / "bundle")
        loaded, digest = load_fitted_pipeline(tmp_path / "bundle")
        result = loaded.sample(seed=5)
        assert result.synthetic_flat == expected.synthetic_flat
        assert result.synthetic_parent == expected.synthetic_parent
        assert result.synthetic_child == expected.synthetic_child
        assert result.original_flat == expected.original_flat
        assert result.details == expected.details
        assert len(digest) == 64

    def test_derec_round_trips(self, trial, tmp_path):
        fitted = DERECPipeline(_config()).fit(trial.ads, trial.feeds)
        expected = fitted.sample(n_subjects=4, seed=3)
        fitted.save(tmp_path / "bundle")
        loaded = FittedPipeline.load(tmp_path / "bundle")
        assert loaded.sample(n_subjects=4, seed=3).synthetic_flat == expected.synthetic_flat

    def test_loaded_config_round_trips(self, bundle, fitted):
        loaded, _ = load_fitted_pipeline(bundle)
        assert loaded.config == fitted.config
        assert loaded.name == fitted.name
        assert loaded.subject_column == fitted.subject_column
        assert loaded.n_training_subjects == fitted.n_training_subjects


class TestSampleTableSharding:
    def test_shard_counts_are_bit_identical(self, bundle):
        reference = SynthesisService.from_bundle(bundle, ServingConfig(
            shards=1, block_size=4, cache_bytes=0)).sample_table(11, seed=9)
        for shards in (2, 3):
            table = SynthesisService.from_bundle(bundle, ServingConfig(
                shards=shards, block_size=4, cache_bytes=0)).sample_table(11, seed=9)
            assert table == reference

    def test_blocks_partition_the_request(self, bundle):
        service = SynthesisService.from_bundle(bundle, ServingConfig(block_size=4))
        blocks = service._blocks(11, seed=9)
        assert [(start, count) for start, count, _ in blocks] == [(0, 4), (4, 4), (8, 3)]
        assert len({block_seed for _, _, block_seed in blocks}) == 3

    def test_result_cache_hits_on_repeat(self, bundle):
        service = SynthesisService.from_bundle(bundle, ServingConfig(cache_bytes=1 << 20))
        first = service.sample_table(6, seed=1)
        second = service.sample_table(6, seed=1)
        assert first == second
        stats = service.stats()
        assert stats["cache_hits"] == 1
        assert stats["table_requests"] == 2

    def test_derive_seed_is_stable_and_spread(self):
        assert derive_seed(7, 11, 0) == derive_seed(7, 11, 0)
        assert derive_seed(7, 11, 0) != derive_seed(7, 11, 1)
        assert derive_seed(7, 11, 0) != derive_seed(8, 11, 0)
        assert derive_seed(-3, 11, 0) >= 0  # negative seeds are masked


class TestCoalescedRows:
    def test_merged_equals_solo(self, bundle):
        service = SynthesisService.from_bundle(bundle, ServingConfig(cache_bytes=0))
        requests = [
            service._normalize_request(5, {"gender": 1}, 3),
            service._normalize_request(3, None, 4),
            service._normalize_request(4, {"age": 2, "gender": 1}, 3),
        ]
        merged = service.sample_rows_many(requests)
        for request, table in zip(requests, merged):
            assert service.sample_rows_many([request])[0] == table
            assert table.num_rows == request.n

    def test_conditions_are_respected_in_original_space(self, bundle):
        service = SynthesisService.from_bundle(bundle, ServingConfig(cache_bytes=0))
        table = service.sample_rows(6, {"gender": 1}, seed=2)
        assert table.column("gender").unique() == [1]
        assert service.fitted.subject_column not in table.column_names

    def test_unknown_condition_column_rejected(self, bundle):
        service = SynthesisService.from_bundle(bundle)
        with pytest.raises(ServingError):
            service.sample_rows(3, {"martian": 1})

    def test_concurrent_requests_coalesce_and_stay_deterministic(self, bundle):
        service = SynthesisService.from_bundle(bundle, ServingConfig(
            cache_bytes=0, batch_window_s=0.02))
        solo = SynthesisService.from_bundle(bundle, ServingConfig(cache_bytes=0))
        results: dict = {}

        def worker(index):
            results[index] = service.sample_rows(4, {"gender": 1}, seed=100 + index)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(5):
            assert results[index] == solo.sample_rows(4, {"gender": 1}, seed=100 + index)
        stats = service.stats()
        assert stats["row_requests"] == 5
        assert stats["coalesced_batches"] < 5  # at least one merged drain

    def test_row_cache_keyed_by_request(self, bundle):
        service = SynthesisService.from_bundle(bundle, ServingConfig(
            cache_bytes=1 << 20, batch_window_s=0.0))
        first = service.sample_rows(3, {"gender": 1}, seed=7)
        assert service.sample_rows(3, {"gender": 1}, seed=7) == first
        assert service.stats()["cache_hits"] >= 1

    def test_derec_rejects_row_serving(self, trial):
        fitted = DERECPipeline(_config()).fit(trial.ads, trial.feeds)
        service = SynthesisService(fitted)
        with pytest.raises(ServingError):
            service.sample_rows(3, {"gender": 1})
        # full-table serving still works for two-round pipelines
        assert service.sample_table(4, seed=1).num_rows > 0

    def test_sample_dispatches_on_conditions(self, bundle):
        service = SynthesisService.from_bundle(bundle, ServingConfig(cache_bytes=0))
        flat = service.sample(5, seed=2)
        rows = service.sample(3, seed=2, conditions={"gender": 1})
        assert flat.num_rows >= 5  # multiple child rows per subject
        assert rows.num_rows == 3
        with pytest.raises(ValueError):
            service.sample(conditions={"gender": 1})


class TestLruCache:
    def test_eviction_order_by_bytes(self):
        cache = LruCache(200, sizer=lambda value: 100)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)           # over budget: evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.bytes_used == 200

    def test_large_entries_evict_more(self):
        cache = LruCache(100, sizer=lambda value: value)
        cache.put("a", 30)
        cache.put("b", 30)
        cache.put("c", 60)  # 120 > 100: evicts a
        assert cache.get("a") is None
        assert cache.get("b") == 30 and cache.get("c") == 60
        assert cache.bytes_used == 90

    def test_oversized_entry_is_not_cached(self):
        cache = LruCache(100, sizer=lambda value: value)
        cache.put("small", 40)
        cache.put("huge", 500)  # bigger than the whole budget
        assert cache.get("huge") is None
        assert cache.get("small") == 40  # untouched by the refused insert

    def test_replacement_updates_bytes(self):
        cache = LruCache(100, sizer=lambda value: value)
        cache.put("a", 40)
        cache.put("a", 10)
        assert cache.bytes_used == 10

    def test_zero_capacity_disables(self):
        cache = LruCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None

    def test_tables_are_sized_approximately(self):
        table = Table({"a": list(range(1000)), "b": ["x"] * 1000})
        size = approx_table_bytes(table)
        assert size >= 8000  # at least the int64 payload
        cache = LruCache(2 * size)
        cache.put("t", table)
        assert cache.get("t") == table
        assert cache.bytes_used == size

    def test_stats_report_cache_bytes_used(self, bundle):
        service = SynthesisService.from_bundle(bundle, ServingConfig(cache_bytes=1 << 20))
        assert service.stats()["cache_bytes_used"] == 0
        service.sample_table(4, seed=1)
        assert service.stats()["cache_bytes_used"] > 0


class TestCliCommands:
    def test_fit_sample_serve_bench_round_trip(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(["fit", "--pipeline", "greater", "--bundle", str(bundle),
                     "--users-per-task", "6", "--seed", "3", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["command"] == "fit" and rows[0]["pipeline"] == "greater"

        out_csv = tmp_path / "flat.csv"
        assert main(["sample", "--bundle", str(bundle), "--n", "4", "--seed", "9",
                     "--out", str(out_csv), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["rows"] == read_csv(out_csv).num_rows

        assert main(["serve-bench", "--bundle", str(bundle), "--requests", "1",
                     "--shards", "1,2", "--n", "4", "--block-size", "2",
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["shards"] for row in rows] == [1, 2]
        assert all(row["identical_across_shards"] for row in rows)

    def test_sample_twice_is_deterministic(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        main(["fit", "--bundle", str(bundle), "--users-per-task", "6", "--seed", "3"])
        capsys.readouterr()
        out_a, out_b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["sample", "--bundle", str(bundle), "--n", "3", "--seed", "1",
              "--out", str(out_a)])
        main(["sample", "--bundle", str(bundle), "--n", "3", "--seed", "1",
              "--out", str(out_b)])
        capsys.readouterr()
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_list_includes_store_commands(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("fit", "sample", "serve-bench", "fig7"):
            assert name in output
