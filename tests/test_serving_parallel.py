"""Tests for process-parallel serving: worker pool, HTTP front end, metrics.

The properties under test mirror the serving guarantees:

* process-pool, thread-pool and serial execution are bit-identical on both
  engines (the per-block seeds make output independent of where it runs);
* the bounded request queue rejects requests past the bound with 429 and
  loses none under it;
* conditioned row requests coalesce across HTTP connections and still
  equal their solo results;
* a crashed worker fails its requests with a clear error while the pool
  keeps serving;
* the latency metrics schema is identical in-process and over ``/stats``.
"""

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

from repro.cli import main
from repro.connecting.connector import ConnectorConfig
from repro.enhancement.enhancer import EnhancerConfig
from repro.pipelines.config import PipelineConfig
from repro.pipelines.greater import GReaTERPipeline
from repro.serving import (
    LatencyHistogram,
    MetricsRegistry,
    ServingConfig,
    ServingError,
    SynthesisService,
    SynthesisServer,
    WorkerPool,
    request_json,
)
from repro.serving.server import table_payload
from repro.serving.workers import decode_table, encode_table
from repro.store.bundle import load_fitted_pipeline


def _config(seed=0, engine="auto"):
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="understandability", seed=seed),
        connector=ConnectorConfig(independence_method="threshold_mean",
                                  remove_noisy_columns=False),
        generation_engine=engine,
        training_engine=engine,
    )


@pytest.fixture(scope="module")
def trial(tiny_digix):
    return tiny_digix.trials()[0]


@pytest.fixture(scope="module", params=["object", "compiled"])
def engine_bundle(request, trial, tmp_path_factory):
    """A fitted GReaTER bundle per engine; tests get (engine, path)."""
    engine = request.param
    fitted = GReaTERPipeline(_config(engine=engine)).fit(trial.ads, trial.feeds)
    path = tmp_path_factory.mktemp("bundles") / "greater-{}".format(engine)
    fitted.save(path)
    return engine, path


@pytest.fixture(scope="module")
def bundle(trial, tmp_path_factory):
    fitted = GReaTERPipeline(_config(engine="compiled")).fit(trial.ads, trial.feeds)
    path = tmp_path_factory.mktemp("bundles") / "greater"
    fitted.save(path)
    return path


@contextmanager
def _service(path, **overrides):
    config = ServingConfig(**{"cache_bytes": 0, **overrides})
    service = SynthesisService.from_bundle(path, config)
    try:
        yield service
    finally:
        service.close()


@contextmanager
def _running_server(service, max_queue=8):
    """Run a SynthesisServer on a background event loop; yields the server."""
    server = SynthesisServer(service, max_queue=max_queue)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()
        loop.run_until_complete(server.stop())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "server did not start"
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)


class TestProcessPoolIdentity:
    def test_process_thread_serial_bit_identical(self, engine_bundle):
        """The tentpole guarantee on both engines: a table sampled serially,
        thread-sharded and process-sharded is the same table, bit for bit."""
        engine, path = engine_bundle
        with _service(path, shards=1, block_size=4) as serial:
            reference = serial.sample_table(11, seed=9)
        with _service(path, shards=3, block_size=4) as threaded:
            assert threaded.sample_table(11, seed=9) == reference
        with _service(path, shards=2, block_size=4, executor="process") as pooled:
            assert pooled.sample_table(11, seed=9) == reference

    def test_worker_counts_are_bit_identical(self, bundle):
        tables = []
        for workers in (1, 2, 4):
            with _service(bundle, shards=workers, block_size=4,
                          executor="process") as service:
                tables.append(service.sample_table(10, seed=3))
        assert tables[0] == tables[1] == tables[2]

    def test_process_rows_match_serial(self, bundle):
        with _service(bundle, shards=1) as serial:
            expected = serial.sample_rows(5, {"gender": 1}, seed=7)
        with _service(bundle, shards=2, executor="process") as pooled:
            assert pooled.sample_rows(5, {"gender": 1}, seed=7) == expected

    def test_process_executor_requires_bundle(self, bundle):
        fitted, _ = load_fitted_pipeline(bundle)
        with pytest.raises(ServingError):
            SynthesisService(fitted, ServingConfig(executor="process"))

    def test_mmap_process_serving_identical(self, bundle):
        with _service(bundle, shards=1, block_size=4) as serial:
            expected = serial.sample_table(8, seed=2)
        with _service(bundle, shards=2, block_size=4, executor="process",
                      mmap=True) as pooled:
            assert pooled.sample_table(8, seed=2) == expected

    def test_digest_mismatch_rejected(self, bundle):
        with pytest.raises(ServingError):
            WorkerPool(bundle, workers=1, expected_digest="0" * 64)

    def test_table_round_trips_through_wire_format(self, bundle):
        with _service(bundle, shards=1) as service:
            table = service.sample_table(5, seed=1)
        assert decode_table(encode_table(table)) == table


class TestWorkerCrash:
    def test_crash_fails_clearly_and_pool_keeps_serving(self, bundle):
        with _service(bundle, shards=2, block_size=4, executor="process") as service:
            expected = None
            with _service(bundle, shards=1, block_size=4) as serial:
                expected = serial.sample_table(9, seed=4)
            task = service.pool.submit("crash", None)
            with pytest.raises(ServingError, match="died"):
                task.result(timeout=30)
            deadline = time.time() + 30
            while service.pool.restarts < 1 and time.time() < deadline:
                time.sleep(0.05)
            assert service.pool.restarts >= 1
            assert service.sample_table(9, seed=4) == expected
            assert service.stats()["worker_restarts"] >= 1

    def test_closed_pool_rejects_submissions(self, bundle):
        service = SynthesisService.from_bundle(
            bundle, ServingConfig(executor="process", cache_bytes=0))
        service.close()
        with pytest.raises(ServingError):
            service.pool.submit("ping", None)


class TestHttpServer:
    def test_endpoints_and_identity(self, bundle):
        with _service(bundle, block_size=4) as service, \
                _running_server(service) as server:
            status, health = request_json(server.host, server.port, "GET", "/healthz")
            assert status == 200 and health["ok"] and health["digest"] == service.digest
            status, got = request_json(server.host, server.port, "POST",
                                       "/sample_table", {"n": 8, "seed": 3})
            assert status == 200
            assert got == table_payload(service.sample_table(8, seed=3))
            status, rows = request_json(server.host, server.port, "POST",
                                        "/sample_rows",
                                        {"n": 3, "seed": 5, "conditions": {"gender": 1}})
            assert status == 200
            assert rows == table_payload(service.sample_rows(3, {"gender": 1}, seed=5))

    def test_http_errors(self, bundle):
        with _service(bundle) as service, _running_server(service) as server:
            assert request_json(server.host, server.port, "POST", "/nope", {})[0] == 404
            assert request_json(server.host, server.port, "GET", "/sample_table")[0] == 405
            status, body = request_json(server.host, server.port, "POST",
                                        "/sample_rows", {"n": 3,
                                                         "conditions": {"martian": 1}})
            assert status == 400 and "martian" in body["error"]
            status, _ = request_json(server.host, server.port, "POST",
                                     "/sample_database", {})
            assert status == 400  # flat bundle cannot serve databases

    def test_backpressure_rejects_past_bound_loses_none_under_it(self, bundle):
        with _service(bundle, block_size=4) as service, \
                _running_server(service, max_queue=2) as server:
            # under the bound: all requests succeed, none lost
            def one(index):
                return request_json(server.host, server.port, "POST",
                                    "/sample_table", {"n": 6, "seed": index},
                                    timeout=120)
            with ThreadPoolExecutor(max_workers=2) as pool:
                outcomes = list(pool.map(one, range(4)))
            assert [status for status, _ in outcomes] == [200] * 4
            # past the bound: the overflow is rejected with 429, the rest serve
            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(one, range(100, 108)))
            codes = sorted(status for status, _ in outcomes)
            assert 429 in codes and 200 in codes
            assert all(code in (200, 429) for code in codes)
            rejected = [body for status, body in outcomes if status == 429]
            assert all(body["max_queue"] == 2 for body in rejected)
            stats = server.stats()["server"]
            assert stats["rejected"] == len(rejected)
            assert stats["queue_high_water"] <= 2

    def test_rows_coalesce_across_connections_and_match_solo(self, bundle):
        with _service(bundle, batch_window_s=0.05) as service, \
                _running_server(service) as server:
            def one(index):
                return request_json(server.host, server.port, "POST",
                                    "/sample_rows",
                                    {"n": 4, "seed": 100 + index,
                                     "conditions": {"gender": 1}}, timeout=120)
            with ThreadPoolExecutor(max_workers=5) as pool:
                outcomes = list(pool.map(one, range(5)))
            assert all(status == 200 for status, _ in outcomes)
            stats = service.stats()
            assert stats["row_requests"] == 5
            assert stats["coalesced_batches"] < 5  # at least one merged drain
            with _service(bundle) as solo:
                for index, (_, body) in enumerate(outcomes):
                    expected = solo.sample_rows(4, {"gender": 1}, seed=100 + index)
                    assert body == table_payload(expected)

    def test_process_backed_server(self, bundle):
        with _service(bundle, shards=2, block_size=4, executor="process") as service, \
                _running_server(service) as server:
            status, got = request_json(server.host, server.port, "POST",
                                       "/sample_table", {"n": 8, "seed": 3})
            assert status == 200
            with _service(bundle, block_size=4) as serial:
                assert got == table_payload(serial.sample_table(8, seed=3))


class TestLatencyMetrics:
    def test_histogram_accumulates_and_buckets(self):
        histogram = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["max_s"] == 5.0
        assert snapshot["total_s"] == pytest.approx(5.555)
        assert snapshot["cumulative_counts"] == [1, 2, 3, 4]
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(1.0) == 5.0

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.snapshot()["count"] == 0

    def test_registry_reuses_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("a").observe(0.2)
        registry.histogram("a").observe(0.3)
        assert registry.snapshot()["a"]["count"] == 2

    def test_service_and_server_report_same_schema(self, bundle):
        with _service(bundle) as service, _running_server(service) as server:
            service.sample_table(4, seed=1)
            local = service.stats()
            status, remote = request_json(server.host, server.port, "GET", "/stats")
            assert status == 200
            assert set(remote) == set(local) | {"server"}
            for endpoint, histogram in local["latency"].items():
                assert set(remote["latency"][endpoint]) == set(histogram)
            # JSON round-trip of the whole stats payload is lossless
            assert json.loads(json.dumps(local)) == json.loads(json.dumps(local))

    def test_latency_recorded_per_endpoint(self, bundle):
        with _service(bundle) as service:
            service.sample_table(4, seed=1)
            service.sample_rows(2, {}, seed=1)
            latency = service.stats()["latency"]
            assert latency["sample_table"]["count"] == 1
            assert latency["sample_rows"]["count"] == 1
            assert latency["sample_table"]["total_s"] > 0


class TestServeCli:
    def test_serve_and_client_round_trip(self, bundle, tmp_path, capsys):
        ready = tmp_path / "ready.txt"
        outcome = {}

        def run_serve():
            outcome["code"] = main([
                "serve", "--bundle", str(bundle), "--block-size", "4",
                "--ready-file", str(ready), "--max-seconds", "15", "--json"])

        thread = threading.Thread(target=run_serve, daemon=True)
        thread.start()
        deadline = time.time() + 10
        while not ready.exists() and time.time() < deadline:
            time.sleep(0.05)
        assert ready.exists(), "server never published its port"
        host, port = ready.read_text().split()
        status, health = request_json(host, int(port), "GET", "/healthz")
        assert status == 200 and health["ok"]
        status, table = request_json(host, int(port), "POST",
                                     "/sample_table", {"n": 4, "seed": 2})
        assert status == 200 and len(table["rows"]) > 0
        thread.join(timeout=30)
        assert outcome["code"] == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["command"] == "serve"
        assert rows[0]["table_requests"] == 1

    def test_client_against_running_server(self, bundle, capsys):
        with _service(bundle, block_size=4) as service, \
                _running_server(service) as server:
            port = str(server.port)
            assert main(["client", "health", "--port", port, "--json"]) == 0
            health = json.loads(capsys.readouterr().out)
            assert health[0]["ok"] is True
            assert main(["client", "table", "--port", port, "--n", "4",
                         "--seed", "2", "--json"]) == 0
            rows = json.loads(capsys.readouterr().out)
            assert rows == table_payload(service.sample_table(4, seed=2))["rows"]
            assert main(["client", "stats", "--port", port, "--json"]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats[0]["sample_table_count"] >= 1

    def test_client_reports_unreachable_server(self):
        with pytest.raises(SystemExit):
            main(["client", "health", "--port", "1", "--timeout", "1"])

    def test_list_includes_serve_commands(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "serve" in output and "client" in output
