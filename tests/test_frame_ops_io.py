"""Unit tests for repro.frame.ops and repro.frame.io."""

import pytest
from hypothesis import given, strategies as st

from repro.frame.errors import ColumnNotFoundError, SchemaError
from repro.frame.io import read_csv, write_csv
from repro.frame.ops import concat_rows, crosstab, inner_join, left_join, value_counts
from repro.frame.table import Table


@pytest.fixture
def left_table():
    return Table({"id": ["a", "a", "b", "c"], "x": [1, 2, 3, 4]})


@pytest.fixture
def right_table():
    return Table({"id": ["a", "b", "b", "d"], "y": ["p", "q", "r", "s"]})


class TestInnerJoin:
    def test_join_produces_cross_product_per_key(self, left_table, right_table):
        joined = inner_join(left_table, right_table, on="id")
        # 'a': 2x1, 'b': 1x2, 'c': 0, 'd': 0 -> 4 rows
        assert joined.num_rows == 4
        assert set(joined.column_names) == {"id", "x", "y"}

    def test_join_values_line_up(self, left_table, right_table):
        joined = inner_join(left_table, right_table, on="id")
        rows = {(r["id"], r["x"], r["y"]) for r in joined.iter_rows()}
        assert ("a", 1, "p") in rows and ("b", 3, "r") in rows

    def test_missing_key_column_raises(self, left_table, right_table):
        with pytest.raises(ColumnNotFoundError):
            inner_join(left_table, right_table, on="nope")

    def test_name_clash_gets_suffix(self):
        left = Table({"id": ["a"], "v": [1]})
        right = Table({"id": ["a"], "v": [2]})
        joined = inner_join(left, right, on="id")
        assert "v" in joined.column_names and "v_y" in joined.column_names

    def test_engaged_subject_dominates(self):
        """The Fig. 4 blow-up: an engaged subject contributes a*b rows."""
        left = Table({"id": ["yin"] * 4 + ["anson"], "x": list(range(5))})
        right = Table({"id": ["yin", "yin", "anson"], "y": list(range(3))})
        joined = inner_join(left, right, on="id")
        yin_rows = joined.where("id", "yin").num_rows
        assert yin_rows == 8
        assert joined.num_rows == 9


class TestLeftJoin:
    def test_unmatched_left_rows_kept_with_none(self, left_table, right_table):
        joined = left_join(left_table, right_table, on="id")
        c_rows = joined.where("id", "c")
        assert c_rows.num_rows == 1
        assert c_rows.column("y").values == [None]

    def test_left_join_superset_of_inner(self, left_table, right_table):
        inner = inner_join(left_table, right_table, on="id")
        left = left_join(left_table, right_table, on="id")
        assert left.num_rows >= inner.num_rows


class TestConcatRows:
    def test_concat_matching_schemas(self):
        a = Table({"x": [1], "y": ["a"]})
        b = Table({"y": ["b"], "x": [2]})
        combined = concat_rows([a, b])
        assert combined.num_rows == 2
        assert combined.column("x").values == [1, 2]

    def test_concat_mismatched_schema_rejected(self):
        a = Table({"x": [1]})
        b = Table({"z": [2]})
        with pytest.raises(SchemaError):
            concat_rows([a, b])

    def test_concat_empty_list(self):
        assert concat_rows([]).num_rows == 0


class TestValueCountsAndCrosstab:
    def test_value_counts(self, left_table):
        counts = value_counts(left_table, "id")
        assert counts["a"] == 2

    def test_value_counts_normalized(self, left_table):
        freqs = value_counts(left_table, "id", normalize=True)
        assert abs(sum(freqs.values()) - 1.0) < 1e-12

    def test_crosstab_counts(self):
        table = Table({"a": ["x", "x", "y"], "b": [1, 2, 1]})
        matrix, rows, cols = crosstab(table, "a", "b")
        assert matrix.sum() == 3
        assert matrix[rows.index("x"), cols.index(1)] == 1

    def test_crosstab_skips_missing(self):
        table = Table({"a": ["x", None], "b": [1, 2]})
        matrix, _, _ = crosstab(table, "a", "b")
        assert matrix.sum() == 1


class TestCsvRoundTrip:
    def test_round_trip_preserves_values(self, tmp_path, small_table):
        path = write_csv(small_table, tmp_path / "table.csv")
        loaded = read_csv(path)
        assert loaded == small_table

    def test_missing_values_round_trip(self, tmp_path):
        table = Table({"a": [1, None, 3], "b": ["x", "y", None]})
        loaded = read_csv(write_csv(table, tmp_path / "t.csv"))
        assert loaded.column("a").values == [1, None, 3]
        assert loaded.column("b").values == ["x", "y", None]

    def test_read_without_type_parsing(self, tmp_path, small_table):
        path = write_csv(small_table, tmp_path / "t.csv")
        loaded = read_csv(path, parse_types=False)
        assert loaded.column("age").values == ["25", "31", "25", "40"]

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(path).num_rows == 0


@given(
    st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20),
    st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20),
)
def test_inner_join_row_count_property(left_keys, right_keys):
    """Property: the join size is the sum over keys of count_left * count_right."""
    left = Table({"id": left_keys, "x": list(range(len(left_keys)))})
    right = Table({"id": right_keys, "y": list(range(len(right_keys)))})
    joined = inner_join(left, right, on="id")
    expected = sum(
        left_keys.count(key) * right_keys.count(key) for key in set(left_keys) | set(right_keys)
    )
    assert joined.num_rows == expected
