"""Tests for contextual-variable extraction and the parent/child synthesizer."""

import pytest

from repro.frame.backend import using_backend
from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig
from repro.relational.contextual import (
    ContextualVariableDetector,
    extract_parent_table,
    merge_contextual_parents,
)
from repro.relational.parent_child import ParentChildConfig, ParentChildSynthesizer


def _fast_pc_config(seed=0):
    backbone = GReaTConfig(
        fine_tune=FineTuneConfig(epochs=2, batches=2, model=ModelConfig(order=4)),
        seed=seed,
    )
    return ParentChildConfig(parent=backbone, child=backbone, seed=seed)


class TestContextualVariableDetector:
    def test_consistency_of_constant_column(self, membership_tables):
        visits, _, subject = membership_tables
        detector = ContextualVariableDetector()
        assert detector.column_consistency(visits, subject, "gender") == 1.0

    def test_consistency_of_varying_column(self, membership_tables):
        visits, _, subject = membership_tables
        detector = ContextualVariableDetector()
        assert detector.column_consistency(visits, subject, "visit_date") < 1.0

    def test_contextual_columns_detected(self, membership_tables):
        visits, _, subject = membership_tables
        detector = ContextualVariableDetector()
        assert set(detector.contextual_columns(visits, subject)) >= {"gender", "birth_date"}

    def test_threshold_allows_exceptions(self):
        """A column consistent for most (not all) subjects still counts (m < 100%)."""
        table = Table({
            "id": ["a"] * 3 + ["b"] * 3 + ["c"] * 3 + ["d"] * 3,
            "ctx": ["x", "x", "x", "y", "y", "y", "z", "z", "z", "w", "w", "v"],
        })
        strict = ContextualVariableDetector(consistency_threshold=1.0)
        lenient = ContextualVariableDetector(consistency_threshold=0.7)
        assert "ctx" not in strict.contextual_columns(table, "id")
        assert "ctx" in lenient.contextual_columns(table, "id")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            ContextualVariableDetector(consistency_threshold=0.0)

    def test_missing_columns_rejected(self, membership_tables):
        visits, _, subject = membership_tables
        detector = ContextualVariableDetector()
        with pytest.raises(KeyError):
            detector.column_consistency(visits, "nope", "gender")
        with pytest.raises(KeyError):
            detector.column_consistency(visits, subject, "nope")


class TestExtractParentTable:
    def test_fig11_parent_matches_ground_truth(self, membership_tables):
        """Fig. 11/12: gender and birth date form the parent table."""
        visits, expected_parent, subject = membership_tables
        split = extract_parent_table(visits, subject)
        assert split.parent.equals_ignoring_order(expected_parent)
        assert set(split.contextual_columns) == {"gender", "birth_date"}

    def test_child_keeps_varying_columns_and_key(self, membership_tables):
        visits, _, subject = membership_tables
        split = extract_parent_table(visits, subject)
        assert split.child.column_names == [subject, "visit_date", "spend"]
        assert split.child.num_rows == visits.num_rows

    def test_explicit_contextual_columns(self, membership_tables):
        visits, _, subject = membership_tables
        split = extract_parent_table(visits, subject, contextual_columns=["gender"])
        assert split.contextual_columns == ("gender",)
        assert "birth_date" in split.child.column_names

    def test_modal_value_used_for_inconsistent_subject(self):
        table = Table({
            "id": ["a", "a", "a"],
            "ctx": ["x", "x", "y"],
        })
        split = extract_parent_table(table, "id", contextual_columns=["ctx"])
        assert split.parent.column("ctx").values == ["x"]

    def test_merge_parents_unions_columns(self, membership_tables):
        visits, _, subject = membership_tables
        first = extract_parent_table(visits, subject, contextual_columns=["gender"])
        second = extract_parent_table(visits, subject, contextual_columns=["birth_date"])
        merged = merge_contextual_parents(first, second)
        assert set(merged.column_names) == {subject, "gender", "birth_date"}
        assert merged.num_rows == first.parent.num_rows

    def test_merge_parents_requires_same_subject(self, membership_tables):
        visits, _, subject = membership_tables
        first = extract_parent_table(visits, subject)
        renamed = visits.rename({subject: "other_id"})
        second = extract_parent_table(renamed, "other_id")
        with pytest.raises(ValueError):
            merge_contextual_parents(first, second)


class TestParentChildSynthesizer:
    @pytest.fixture
    def parent_child(self, membership_tables):
        visits, _, subject = membership_tables
        split = extract_parent_table(visits, subject)
        return split.parent, split.child, subject

    def test_fit_and_sample_shapes(self, parent_child):
        parent, child, subject = parent_child
        synth = ParentChildSynthesizer(_fast_pc_config()).fit(parent, child, subject)
        synthetic_parent, synthetic_child = synth.sample(4, seed=1)
        assert synthetic_parent.num_rows == 4
        assert synthetic_parent.column_names == parent.column_names
        assert set(synthetic_child.column_names) == set(child.column_names)
        assert synthetic_child.num_rows >= 4

    def test_every_child_row_references_a_synthetic_parent(self, parent_child):
        parent, child, subject = parent_child
        synth = ParentChildSynthesizer(_fast_pc_config()).fit(parent, child, subject)
        synthetic_parent, synthetic_child = synth.sample(3, seed=2)
        parents = set(synthetic_parent.column(subject))
        assert set(synthetic_child.column(subject)) <= parents

    def test_sample_flat_contains_parent_and_child_columns(self, parent_child):
        parent, child, subject = parent_child
        synth = ParentChildSynthesizer(_fast_pc_config()).fit(parent, child, subject)
        flat = synth.sample_flat(3, seed=3)
        for name in parent.column_names + [c for c in child.column_names if c != subject]:
            assert name in flat.column_names

    def test_fixed_children_per_parent(self, parent_child):
        parent, child, subject = parent_child
        config = ParentChildConfig(parent=_fast_pc_config().parent,
                                   child=_fast_pc_config().child,
                                   children_per_parent=2, seed=0)
        synth = ParentChildSynthesizer(config).fit(parent, child, subject)
        _, synthetic_child = synth.sample(3, seed=4)
        assert synthetic_child.num_rows == 6

    def test_sampled_values_come_from_training_support(self, parent_child):
        parent, child, subject = parent_child
        synth = ParentChildSynthesizer(_fast_pc_config()).fit(parent, child, subject)
        _, synthetic_child = synth.sample(3, seed=5)
        observed_spend = set(child.column("spend").unique())
        assert set(synthetic_child.column("spend").unique()) <= observed_spend

    def test_requires_fit_before_sample(self):
        with pytest.raises(RuntimeError):
            ParentChildSynthesizer(_fast_pc_config()).sample(1)

    def test_duplicate_parent_subjects_rejected(self, parent_child):
        """A parent table with repeated subjects would silently mis-group the
        children (last row wins); fit must refuse it loudly instead."""
        parent, child, subject = parent_child
        subjects = parent.column(subject).values
        subjects[0] = subjects[1]
        duplicated = parent.with_column(subject, subjects)
        with pytest.raises(ValueError, match="not unique"):
            ParentChildSynthesizer(_fast_pc_config()).fit(duplicated, child, subject)

    def test_missing_subject_column_rejected(self, parent_child):
        parent, child, subject = parent_child
        with pytest.raises(KeyError):
            ParentChildSynthesizer(_fast_pc_config()).fit(parent.drop(subject).with_column("x", [1] * parent.num_rows), child, subject)

    def test_invalid_children_per_parent(self):
        with pytest.raises(ValueError):
            ParentChildConfig(children_per_parent=0)
        with pytest.raises(ValueError):
            ParentChildConfig(children_per_parent="lots")

    def test_invalid_sample_size(self, parent_child):
        parent, child, subject = parent_child
        synth = ParentChildSynthesizer(_fast_pc_config()).fit(parent, child, subject)
        with pytest.raises(ValueError):
            synth.sample(0)

    def test_children_per_subject_deterministic_across_backends(self, parent_child):
        """Regression: the children-per-subject list is pinned by subject key,
        so ``rng.choice`` draws reproduce across storage backends (whose
        ``value_counts`` tie ordering differs)."""
        parent, child, subject = parent_child
        distributions = {}
        for backend in ("object", "numpy"):
            with using_backend(backend):
                rebuilt_parent = Table.from_records(parent.to_records())
                rebuilt_child = Table.from_records(child.to_records())
                synth = ParentChildSynthesizer(_fast_pc_config())
                synth.fit(rebuilt_parent, rebuilt_child, subject)
                distributions[backend] = list(synth._children_per_subject)
        assert distributions["object"] == distributions["numpy"]

    def test_sample_all_flat_consistent_with_pair(self, parent_child):
        """The flat view is derived from the sampled pair, never regenerated."""
        parent, child, subject = parent_child
        synth = ParentChildSynthesizer(_fast_pc_config()).fit(parent, child, subject)
        parent_table, child_table, flat = synth.sample_all(3, seed=6)
        assert flat.num_rows == child_table.num_rows
        assert flat == synth.flatten_pair(parent_table, child_table)
        # every flat row restates its child row's values
        child_columns = [name for name in child.column_names if name != subject]
        for flat_row, child_row in zip(flat.iter_rows(), child_table.iter_rows()):
            for name in child_columns:
                assert flat_row[name] == child_row[name]

    def test_sample_flat_matches_sample_all(self, parent_child):
        parent, child, subject = parent_child
        synth = ParentChildSynthesizer(_fast_pc_config()).fit(parent, child, subject)
        assert synth.sample_flat(3, seed=8) == synth.sample_all(3, seed=8)[2]
