"""Tests for out-of-core streaming synthesis: chunked generators and sinks.

The properties under test mirror the streaming guarantees:

* chunked synthesis is bit-identical to its in-memory materialization at the
  same chunk size, on both engines and across chunk sizes {1, uneven,
  exact-multiple, > rows};
* the streaming CSV sink produces byte-identical files to
  :func:`repro.frame.io.write_csv`, publishes atomically and discards
  cleanly on abort;
* NPZ part-directory spills reassemble losslessly and serve single columns
  via memory-mapped reads;
* ``iter_sample_database`` equals ``sample_database`` with and without a
  spool directory, and whole databases are identical across 1/2/4 serving
  shards;
* streaming holds O(chunk) memory — the tracemalloc peak of the chunked
  walk stays well below the in-memory path's peak;
* the HTTP ``stream=true`` path returns the same rows as the buffered path
  and reports chunk counters and peak RSS in ``/stats``.
"""

import asyncio
import hashlib
import threading
import tracemalloc
from contextlib import contextmanager

import pytest

from repro.cli import main
from repro.connecting.connector import ConnectorConfig
from repro.enhancement.enhancer import EnhancerConfig
from repro.frame.io import write_csv
from repro.frame.ops import concat_rows
from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig
from repro.llm.sampler import SamplerConfig
from repro.pipelines.config import PipelineConfig
from repro.pipelines.greater import GReaTERPipeline
from repro.pipelines.multitable import MultiTablePipelineConfig, MultiTableSchemaPipeline
from repro.serving import ServingConfig, SynthesisService, process_peak_rss_bytes
from repro.serving.server import SynthesisServer, request_json, request_json_stream
from repro.store.bundle import load_fitted_pipeline
from repro.store.codec import StoreError
from repro.store.stream import (
    CsvTableSink,
    MemorySink,
    PartTableSink,
    SpoolingSink,
    iter_part_tables,
    part_table_column,
    part_table_num_rows,
    read_part_table,
)

#: {minimum, uneven remainder, exact multiple of 12, more than 12 rows}
CHUNK_SIZES = (1, 7, 4, 30)


def _sha256(path) -> str:
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def _great_config(engine, seed=0):
    return GReaTConfig(
        fine_tune=FineTuneConfig(epochs=2, batches=2, model=ModelConfig(order=4)),
        sampler=SamplerConfig(engine=engine, seed=seed),
        seed=seed,
    )


def _pipeline_config(engine, seed=0):
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="understandability", seed=seed),
        connector=ConnectorConfig(remove_noisy_columns=False),
        generation_engine=engine,
        training_engine=engine,
    )


@pytest.fixture
def meals_table():
    return Table({
        "Name": ["Grace", "Yin", "Anson", "Maya", "Leo", "Iris"],
        "Lunch": ["Rice", "Spaghetti", "Rice", "Noodles", "Spaghetti", "Rice"],
        "Dinner": ["Steak", "Chicken", "Curry", "Steak", "Chicken", "Curry"],
        "Rating": [5, 4, 3, 5, 4, 3],
    })


@pytest.fixture(scope="module", params=["object", "compiled"])
def great_synth(request):
    table = Table({
        "Name": ["Grace", "Yin", "Anson", "Maya", "Leo", "Iris"],
        "Lunch": ["Rice", "Spaghetti", "Rice", "Noodles", "Spaghetti", "Rice"],
        "Rating": [5, 4, 3, 5, 4, 3],
    })
    return request.param, GReaTSynthesizer(_great_config(request.param)).fit(table)


@pytest.fixture(scope="module", params=["object", "compiled"])
def engine_bundle(request, tiny_digix, tmp_path_factory):
    """A fitted GReaTER bundle per engine; tests get (engine, path)."""
    engine = request.param
    trial = tiny_digix.trials()[0]
    fitted = GReaTERPipeline(_pipeline_config(engine)).fit(trial.ads, trial.feeds)
    path = tmp_path_factory.mktemp("bundles") / "greater-{}".format(engine)
    fitted.save(path)
    return engine, path


@pytest.fixture(scope="module")
def database_tables():
    return {
        "users": Table({
            "user_id": ["u{}".format(i) for i in range(12)],
            "city": ["a", "b", "c", "a", "b", "c", "a", "b", "c", "a", "b", "c"],
        }),
        "orders": Table({
            "order_id": ["o{}".format(i) for i in range(24)],
            "user_id": ["u{}".format(i % 12) for i in range(24)],
            "amount": [5 * (i % 7) + 3 for i in range(24)],
        }),
    }


@pytest.fixture(scope="module")
def multitable_fitted(database_tables):
    return MultiTableSchemaPipeline(MultiTablePipelineConfig(seed=3)).fit(database_tables)


@pytest.fixture(scope="module")
def multitable_bundle(multitable_fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("bundles") / "multitable"
    multitable_fitted.save(path)
    return path


# ---------------------------------------------------------------------------
# chunked == in-memory identity
# ---------------------------------------------------------------------------

class TestSynthesizerChunkIdentity:
    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_iter_equals_chunked_sample(self, great_synth, chunk_rows):
        """Draining ``iter_sample`` equals ``sample_chunked`` at every chunk
        size — including 1, an uneven remainder, and chunk > rows."""
        _, synth = great_synth
        streamed = concat_rows(list(synth.iter_sample(12, seed=9, chunk_rows=chunk_rows)))
        assert streamed == synth.sample_chunked(12, seed=9, chunk_rows=chunk_rows)

    def test_chunk_seeds_are_stable_per_index(self, great_synth):
        """Chunked sampling is deterministic: same (n, seed, chunk) twice."""
        _, synth = great_synth
        first = synth.sample_chunked(12, seed=4, chunk_rows=5)
        assert first == synth.sample_chunked(12, seed=4, chunk_rows=5)

    def test_chunk_sizes_yield_expected_counts(self, great_synth):
        _, synth = great_synth
        chunks = list(synth.iter_sample(12, seed=1, chunk_rows=5))
        assert [chunk.num_rows for chunk in chunks] == [5, 5, 2]


class TestPipelineStreamIdentity:
    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_streamed_csv_matches_in_memory_bytes(self, engine_bundle, tmp_path,
                                                  chunk_rows):
        """The tentpole identity on both engines: the CSV streamed chunk by
        chunk is byte-identical (sha256) to writing the concatenated blocks
        in one shot."""
        _, path = engine_bundle
        fitted, _ = load_fitted_pipeline(path)
        streamed_path = tmp_path / "streamed.csv"
        with CsvTableSink(streamed_path) as sink:
            sink.write_all(fitted.iter_sample_flat(seed=2, chunk_rows=chunk_rows))
        whole = concat_rows(list(fitted.iter_sample_flat(seed=2, chunk_rows=chunk_rows)))
        whole_path = tmp_path / "whole.csv"
        write_csv(whole, whole_path)
        assert _sha256(streamed_path) == _sha256(whole_path)

    def test_stream_equals_serving_blocks(self, engine_bundle):
        """The streamed blocks are the serving layer's sharding units: the
        concatenation equals ``sample_table`` at ``block_size == chunk_rows``."""
        _, path = engine_bundle
        fitted, _ = load_fitted_pipeline(path)
        streamed = concat_rows(list(fitted.iter_sample_flat(seed=6, chunk_rows=4)))
        service = SynthesisService.from_bundle(
            path, ServingConfig(block_size=4, cache_bytes=0))
        try:
            assert streamed == service.sample_table(seed=6)
        finally:
            service.close()


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------

class TestCsvTableSink:
    def test_bytes_identical_to_write_csv(self, meals_table, tmp_path):
        streamed, whole = tmp_path / "streamed.csv", tmp_path / "whole.csv"
        with CsvTableSink(streamed) as sink:
            sink.write(meals_table.take([0, 1]))
            sink.write(meals_table.take([2, 3, 4, 5]))
        write_csv(meals_table, whole)
        assert streamed.read_bytes() == whole.read_bytes()

    def test_abort_leaves_nothing(self, meals_table, tmp_path):
        target = tmp_path / "aborted.csv"
        sink = CsvTableSink(target)
        sink.write(meals_table)
        sink.abort()
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_exception_in_with_block_discards(self, meals_table, tmp_path):
        target = tmp_path / "failed.csv"
        with pytest.raises(RuntimeError):
            with CsvTableSink(target) as sink:
                sink.write(meals_table)
                raise RuntimeError("producer died")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_empty_close_writes_header_when_columns_known(self, meals_table, tmp_path):
        target = tmp_path / "empty.csv"
        with CsvTableSink(target) as sink:
            sink.write(meals_table.take([]))
        assert target.read_text().strip() == ",".join(meals_table.column_names)

    def test_column_mismatch_rejected(self, meals_table, tmp_path):
        with CsvTableSink(tmp_path / "t.csv") as sink:
            sink.write(meals_table)
            with pytest.raises(StoreError):
                sink.write(meals_table.drop("Rating"))

    def test_write_after_close_rejected(self, meals_table, tmp_path):
        sink = CsvTableSink(tmp_path / "t.csv")
        sink.write(meals_table)
        sink.close()
        with pytest.raises(StoreError):
            sink.write(meals_table)


class TestPartTableSink:
    def test_round_trip_lossless(self, meals_table, tmp_path):
        spill = tmp_path / "spill"
        with PartTableSink(spill) as sink:
            sink.write(meals_table.take([0, 1, 2]))
            sink.write(meals_table.take([3, 4, 5]))
        assert read_part_table(spill) == meals_table
        assert part_table_num_rows(spill) == meals_table.num_rows
        assert [part.num_rows for part in iter_part_tables(spill)] == [3, 3]

    def test_column_reads_match_values(self, meals_table, tmp_path):
        spill = tmp_path / "spill"
        with PartTableSink(spill) as sink:
            sink.write(meals_table.take([0, 1, 2, 3]))
            sink.write(meals_table.take([4, 5]))
        for name in meals_table.column_names:
            assert part_table_column(spill, name) == meals_table.column(name).values

    def test_missing_column_rejected(self, meals_table, tmp_path):
        spill = tmp_path / "spill"
        with PartTableSink(spill) as sink:
            sink.write(meals_table)
        with pytest.raises(StoreError):
            part_table_column(spill, "NoSuchColumn")

    def test_incomplete_spill_rejected(self, meals_table, tmp_path):
        spill = tmp_path / "spill"
        sink = PartTableSink(spill)
        sink.write(meals_table)
        # no close(): the manifest is missing, so readers must refuse
        with pytest.raises(StoreError):
            read_part_table(spill)

    def test_abort_removes_parts(self, meals_table, tmp_path):
        spill = tmp_path / "spill"
        sink = PartTableSink(spill)
        sink.write(meals_table)
        sink.abort()
        assert list(spill.iterdir()) == []

    def test_completed_directory_not_reused(self, meals_table, tmp_path):
        spill = tmp_path / "spill"
        with PartTableSink(spill) as sink:
            sink.write(meals_table)
        with pytest.raises(StoreError):
            PartTableSink(spill)


class TestSpoolingSink:
    def test_rechunks_to_fixed_size(self, meals_table, tmp_path):
        inner = MemorySink()
        with SpoolingSink(inner, chunk_rows=4) as sink:
            sink.write(meals_table.take([0, 1]))
            sink.write(meals_table.take([2]))
            sink.write(meals_table.take([3, 4, 5]))
        assert [chunk.num_rows for chunk in inner.chunks] == [4, 2]
        assert inner.table() == meals_table

    def test_abort_propagates(self, meals_table, tmp_path):
        target = tmp_path / "t.csv"
        sink = SpoolingSink(CsvTableSink(target), chunk_rows=2)
        sink.write(meals_table)
        sink.abort()
        assert not target.exists()

    def test_invalid_chunk_rows(self):
        with pytest.raises(ValueError):
            SpoolingSink(MemorySink(), chunk_rows=0)


# ---------------------------------------------------------------------------
# whole-database streaming
# ---------------------------------------------------------------------------

class TestDatabaseStreaming:
    def test_iter_equals_sample_database_in_ram(self, multitable_fitted):
        reference = multitable_fitted.sample_database(seed=5)
        streamed = dict(multitable_fitted.iter_sample_database(seed=5))
        assert streamed == reference

    def test_iter_equals_sample_database_spilled(self, multitable_fitted, tmp_path):
        """Spilling each completed table to NPZ parts (FK keys re-read via
        mmap) changes nothing about the sampled database."""
        reference = multitable_fitted.sample_database(seed=5)
        streamed = dict(multitable_fitted.iter_sample_database(
            seed=5, spool=tmp_path / "spool"))
        assert streamed == reference
        for name in reference:
            assert (tmp_path / "spool" / name / "manifest.json").exists()

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_database_identical_across_serving_shards(self, multitable_fitted,
                                                      multitable_bundle, shards):
        reference = multitable_fitted.sample_database(seed=8)
        service = SynthesisService.from_bundle(
            multitable_bundle, ServingConfig(shards=shards, cache_bytes=0))
        try:
            assert service.sample_database(seed=8) == reference
        finally:
            service.close()


# ---------------------------------------------------------------------------
# bounded memory
# ---------------------------------------------------------------------------

class TestMemoryBounds:
    def test_streaming_peak_below_in_memory_peak(self, engine_bundle, tmp_path):
        """Chunked streaming must not materialize the table: its traced
        allocation peak stays well under the in-memory path's peak."""
        _, path = engine_bundle
        fitted, _ = load_fitted_pipeline(path)
        n, chunk_rows = 192, 4

        tracemalloc.start()
        whole = concat_rows(list(fitted.iter_sample_flat(
            n_subjects=n, seed=1, chunk_rows=chunk_rows)))
        _, full_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert whole.num_rows >= n  # flat rows, >= one per subject

        tracemalloc.start()
        with CsvTableSink(tmp_path / "streamed.csv") as sink:
            sink.write_all(fitted.iter_sample_flat(
                n_subjects=n, seed=1, chunk_rows=chunk_rows))
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert stream_peak < 0.7 * full_peak, (
            "streaming peak {} not below 0.7x in-memory peak {}".format(
                stream_peak, full_peak))

    def test_process_peak_rss_reported(self):
        peak = process_peak_rss_bytes()
        assert peak is None or peak > 0


# ---------------------------------------------------------------------------
# HTTP streaming
# ---------------------------------------------------------------------------

@contextmanager
def _running_server(service, max_queue=8):
    server = SynthesisServer(service, max_queue=max_queue)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()
        loop.run_until_complete(server.stop())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "server did not start"
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)


class TestHttpStreaming:
    @pytest.fixture(scope="class")
    def served_bundle(self, tiny_digix, tmp_path_factory):
        trial = tiny_digix.trials()[0]
        fitted = GReaTERPipeline(_pipeline_config("compiled")).fit(trial.ads, trial.feeds)
        path = tmp_path_factory.mktemp("bundles") / "greater-http"
        fitted.save(path)
        return path

    def test_stream_rows_equal_buffered_rows(self, served_bundle):
        service = SynthesisService.from_bundle(
            served_bundle, ServingConfig(block_size=4, cache_bytes=0))
        with _running_server(service) as server:
            host, port = server.host, server.port
            status, body = request_json(host, port, "POST", "/sample_table",
                                        {"seed": 3})
            assert status == 200
            status, lines = request_json_stream(host, port, {"seed": 3})
            assert status == 200
            summary = lines[-1]
            streamed_rows = [row for line in lines[:-1] for row in line["rows"]]
            assert streamed_rows == body["rows"]
            assert summary["done"] is True
            assert summary["rows"] == len(streamed_rows)
            assert summary["chunks"] == len(lines) - 1

            stats = service.stats()
            assert stats["streamed_requests"] == 1
            assert stats["streamed_chunks"] == summary["chunks"]
            assert stats["streamed_rows"] == summary["rows"]
            assert stats["peak_rss_bytes"] is None or stats["peak_rss_bytes"] > 0
        service.close()

    def test_stream_rejects_bad_request(self, served_bundle):
        service = SynthesisService.from_bundle(served_bundle, ServingConfig(cache_bytes=0))
        with _running_server(service) as server:
            host, port = server.host, server.port
            status, body = request_json_stream(host, port, {"n": -3})
            assert status == 400
            assert "error" in body
        service.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCliStreaming:
    def test_sample_chunk_rows_streams_identical_csv(self, engine_bundle, tmp_path,
                                                     capsys):
        _, path = engine_bundle
        out = tmp_path / "streamed.csv"
        assert main(["sample", "--bundle", str(path), "--chunk-rows", "7",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        fitted, _ = load_fitted_pipeline(path)
        whole = concat_rows(list(fitted.iter_sample_flat(chunk_rows=7)))
        reference = tmp_path / "whole.csv"
        write_csv(whole, reference)
        assert _sha256(out) == _sha256(reference)

    def test_sample_chunk_rows_requires_out(self, engine_bundle):
        _, path = engine_bundle
        with pytest.raises(SystemExit):
            main(["sample", "--bundle", str(path), "--chunk-rows", "7"])
