"""Tests for the Cross-table Connecting Method (Sec. 3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.connecting.connector import ConnectionResult, ConnectorConfig, CrossTableConnector
from repro.connecting.flatten import direct_flatten, flattening_report
from repro.connecting.independence import HierarchicalClusteringSeparation, ThresholdSeparation
from repro.connecting.preprocessing import DIGIX_NOISY_COLUMNS, NoisyColumnFilter, remove_noisy_columns
from repro.connecting.reduction import reduce_dimension
from repro.connecting.sampling import BootstrapAppender, SubjectPools
from repro.frame.table import Table


class TestDirectFlatten:
    def test_fig4_dimensionality_blowup(self, toy_child_tables):
        meals, viewing, subject = toy_child_tables
        flattened = direct_flatten(meals, viewing, subject)
        # Yin: 4 meal rows x 2 viewing rows = 8; Grace: 1x2 = 2; Anson: 1x1 = 1
        assert flattened.num_rows == 11
        assert flattened.num_columns == 5

    def test_fig4_engaged_subject_bias(self, toy_child_tables):
        meals, viewing, subject = toy_child_tables
        flattened = direct_flatten(meals, viewing, subject)
        report = flattening_report(meals, viewing, flattened, subject)
        assert report.max_subject_share == pytest.approx(8 / 11)
        assert report.engagement_ratio == pytest.approx(8.0)
        assert report.blowup_factor > 1.0


class TestThresholdSeparation:
    def _table(self):
        # 'a' and 'b' move together; 'c' is independent noise
        return Table({
            "a": [1, 1, 2, 2, 1, 2, 1, 2] * 6,
            "b": ["x", "x", "y", "y", "x", "y", "x", "y"] * 6,
            "c": [1, 2, 1, 2, 2, 1, 2, 1] * 6,
        })

    def test_detects_independent_column(self):
        result = ThresholdSeparation(threshold=0.5).determine(self._table())
        assert "c" in result.independent_columns
        assert set(result.dependent_columns) == {"a", "b"}

    def test_mean_and_median_thresholds_resolve(self):
        table = self._table()
        for mode in ("mean", "median"):
            result = ThresholdSeparation(threshold=mode).determine(table)
            assert 0.0 <= result.threshold <= 1.0

    def test_up_and_stay_requires_all_pairs_below_threshold(self):
        result = ThresholdSeparation(threshold=0.5).determine(self._table())
        # 'a' is highly associated with 'b', so it cannot be independent
        assert "a" not in result.independent_columns

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdSeparation(threshold=1.5)
        with pytest.raises(ValueError):
            ThresholdSeparation(threshold="max")

    def test_result_records_matrix_and_order(self):
        result = ThresholdSeparation(threshold=0.5).determine(self._table())
        assert result.matrix.shape == (3, 3)
        assert result.column_order == ("a", "b", "c")


class TestHierarchicalClusteringSeparation:
    def test_singleton_cluster_is_independent(self):
        table = Table({
            "a": [1, 1, 2, 2, 1, 2] * 8,
            "b": ["x", "x", "y", "y", "x", "y"] * 8,
            "c": [1, 2, 2, 1, 2, 1] * 8,
        })
        result = HierarchicalClusteringSeparation(distance_threshold=0.4).determine(table)
        assert "c" in result.independent_columns
        assert "a" in result.dependent_columns

    def test_single_column_table(self):
        table = Table({"a": [1, 2, 3]})
        result = HierarchicalClusteringSeparation().determine(table)
        assert result.independent_columns == ()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalClusteringSeparation(distance_threshold="min")


class TestReduceDimension:
    def test_duplicate_rows_removed_after_column_drop(self, toy_child_tables):
        """Fig. 4 step 2: removing 'Genre' exposes duplicate Yin rows."""
        meals, viewing, subject = toy_child_tables
        flattened = direct_flatten(meals, viewing, subject)
        reduced, report = reduce_dimension(flattened, ["Genre"])
        assert "Genre" not in reduced.column_names
        assert reduced.num_rows < flattened.num_rows
        assert report.rows_removed == flattened.num_rows - reduced.num_rows
        assert 0.0 < report.reduction_ratio < 1.0

    def test_no_independent_columns_is_plain_dedup(self):
        table = Table({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        reduced, report = reduce_dimension(table, [])
        assert reduced.num_rows == 2
        assert report.removed_columns == ()

    def test_missing_columns_ignored(self):
        table = Table({"a": [1, 2]})
        reduced, report = reduce_dimension(table, ["ghost"])
        assert reduced.num_rows == 2
        assert report.removed_columns == ()


class TestBootstrapAppender:
    def test_per_subject_pools_respect_original_combinations(self, toy_child_tables):
        """Sec. 3.3.3: Anson's pool only contains 'Anime'."""
        meals, viewing, subject = toy_child_tables
        flattened = direct_flatten(meals, viewing, subject)
        pools = SubjectPools.from_table(flattened, subject, "Genre")
        assert pools.allowed_values("Anson") == {"Anime"}

    def test_appended_values_always_valid(self, toy_child_tables):
        meals, viewing, subject = toy_child_tables
        flattened = direct_flatten(meals, viewing, subject)
        reduced, _ = reduce_dimension(flattened, ["Genre"])
        appender = BootstrapAppender(subject_column=subject, per_subject=True, seed=0)
        appender.fit(flattened, ["Genre"])
        appended = appender.append(reduced)
        assert "Genre" in appended.column_names
        assert appender.validates(appended)

    def test_global_pool_can_fabricate_combinations(self, toy_child_tables):
        meals, viewing, subject = toy_child_tables
        flattened = direct_flatten(meals, viewing, subject)
        reduced, _ = reduce_dimension(flattened, ["Genre"])
        appender = BootstrapAppender(subject_column=subject, per_subject=False, seed=1)
        appender.fit(flattened, ["Genre"])
        appended = appender.append(reduced)
        checker = BootstrapAppender(subject_column=subject, per_subject=True, seed=1)
        checker.fit(flattened, ["Genre"])
        # with the global pool, validity is not guaranteed (it may hold by luck,
        # so only assert the per-subject appender never violates it)
        assert checker.validates(
            checker.append(reduced)
        )
        assert appended.num_rows == reduced.num_rows

    def test_unseen_subject_falls_back_to_global_pool(self):
        original = Table({"id": ["a", "a", "b"], "v": [1, 2, 3]})
        reduced = Table({"id": ["a", "z"]})
        appender = BootstrapAppender(subject_column="id", seed=0).fit(original, ["v"])
        appended = appender.append(reduced)
        assert appended.column("v")[1] in {1, 2, 3}

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            BootstrapAppender(subject_column="id").append(Table({"id": ["a"]}))

    def test_append_is_reproducible(self, toy_child_tables):
        meals, viewing, subject = toy_child_tables
        flattened = direct_flatten(meals, viewing, subject)
        reduced, _ = reduce_dimension(flattened, ["Genre"])
        appender = BootstrapAppender(subject_column=subject, seed=5).fit(flattened, ["Genre"])
        assert appender.append(reduced, seed=9) == appender.append(reduced, seed=9)


class TestNoisyColumnFilter:
    def test_explicit_digix_columns_removed(self):
        table = Table({
            "user_id": ["u{}".format(i) for i in range(10)],
            "e_et": [202201010100 + i for i in range(10)],
            "gender": [2, 3] * 5,
        })
        filtered, removed = NoisyColumnFilter(protect_columns=("user_id",)).apply(table)
        assert "e_et" in removed
        assert "gender" in filtered.column_names

    def test_near_unique_columns_detected(self):
        table = Table({
            "doc": ["doc{}".format(i) for i in range(20)],
            "cat": [i % 3 for i in range(20)],
        })
        detected = NoisyColumnFilter().detect(table)
        assert "doc" in detected and "cat" not in detected

    def test_protected_columns_kept(self):
        table = Table({"key": ["k{}".format(i) for i in range(10)]})
        filtered, removed = NoisyColumnFilter(protect_columns=("key",)).apply(table)
        assert removed == []

    def test_remove_noisy_columns_explicit_list(self):
        table = Table({"a": [1, 2], "idocid": ["x", "y"]})
        filtered, removed = remove_noisy_columns(table, columns=DIGIX_NOISY_COLUMNS)
        assert removed == ["idocid"]
        assert "idocid" not in filtered.column_names

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            NoisyColumnFilter(uniqueness_threshold=0.0)


class TestCrossTableConnector:
    def test_connect_toy_tables_reduces_rows(self, toy_child_tables):
        meals, viewing, subject = toy_child_tables
        connector = CrossTableConnector(ConnectorConfig(
            independence_method="threshold_mean", remove_noisy_columns=False, seed=0))
        result = connector.connect(meals, viewing, subject)
        assert isinstance(result, ConnectionResult)
        assert result.connected.num_rows <= result.flattened.num_rows
        assert set(result.connected.column_names) == set(result.flattened.column_names)

    def test_none_method_is_direct_flattening(self, toy_child_tables):
        meals, viewing, subject = toy_child_tables
        connector = CrossTableConnector(ConnectorConfig(
            independence_method="none", remove_noisy_columns=False))
        result = connector.connect(meals, viewing, subject)
        assert result.connected == result.flattened
        assert result.independence is None

    def test_hierarchical_method_runs(self, toy_child_tables):
        meals, viewing, subject = toy_child_tables
        connector = CrossTableConnector(ConnectorConfig(
            independence_method="hierarchical", remove_noisy_columns=False))
        result = connector.connect(meals, viewing, subject)
        assert result.connected.num_rows >= 1

    def test_disjoint_subjects_rejected(self):
        first = Table({"id": ["a"], "x": [1]})
        second = Table({"id": ["b"], "y": [2]})
        with pytest.raises(ValueError):
            CrossTableConnector().connect(first, second, "id")

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            ConnectorConfig(independence_method="pca")

    def test_appended_columns_match_independent_columns(self, toy_child_tables):
        meals, viewing, subject = toy_child_tables
        connector = CrossTableConnector(ConnectorConfig(
            independence_method="threshold_mean", remove_noisy_columns=False))
        result = connector.connect(meals, viewing, subject)
        if result.independence and result.independence.independent_columns:
            assert set(result.appended_columns) == set(result.independence.independent_columns)
        else:
            assert result.appended_columns == ()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["u1", "u2", "u3"]), st.integers(0, 3)),
                min_size=2, max_size=20),
       st.lists(st.tuples(st.sampled_from(["u1", "u2", "u3"]), st.sampled_from("pqr")),
                min_size=2, max_size=20))
def test_connector_preserves_subject_set_property(first_rows, second_rows):
    """Property: the connected table only contains subjects present in both child tables."""
    first = Table({"id": [r[0] for r in first_rows], "x": [r[1] for r in first_rows]})
    second = Table({"id": [r[0] for r in second_rows], "y": [r[1] for r in second_rows]})
    shared = set(first.column("id")) & set(second.column("id"))
    connector = CrossTableConnector(ConnectorConfig(
        independence_method="threshold_mean", remove_noisy_columns=False))
    if not shared:
        with pytest.raises(ValueError):
            connector.connect(first, second, "id")
        return
    result = connector.connect(first, second, "id")
    assert set(result.connected.column("id")) <= shared
