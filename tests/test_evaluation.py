"""Tests for the fidelity metrics (Algorithm 1) and the ablation counting."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.ablation import compare_reports, summarize_trials
from repro.evaluation.fidelity import (
    ColumnPairFidelity,
    FidelityEvaluator,
    FidelityReport,
    encode_categories,
)
from repro.frame.table import Table


def _make_table(rng, n, noise=0.0):
    """Two associated categorical columns plus one independent column."""
    records = []
    for _ in range(n):
        a = rng.choice(["x", "y", "z"])
        if rng.random() < noise:
            b = rng.choice(["p", "q", "r"])
        else:
            b = {"x": "p", "y": "q", "z": "r"}[a]
        records.append({"a": a, "b": b, "c": rng.randint(1, 4)})
    return Table.from_records(records, columns=["a", "b", "c"])


class TestEncodeCategories:
    def test_numeric_passthrough(self):
        a, b = encode_categories([1, 2, 3], [2, 3])
        assert a == [1.0, 2.0, 3.0] and b == [2.0, 3.0]

    def test_categorical_shared_codebook(self):
        a, b = encode_categories(["x", "y"], ["y", "z"])
        assert len(set(a) | set(b)) == 3
        # the same category gets the same code on both sides
        assert a[1] == b[0]

    def test_missing_values_dropped(self):
        a, b = encode_categories([1, None, 2], [None, 3])
        assert a == [1.0, 2.0] and b == [3.0]

    def test_mixed_types_stringified(self):
        a, b = encode_categories([1, "x"], ["x"])
        assert len(a) == 2 and len(b) == 1


class TestPairFidelity:
    def test_identical_tables_score_high(self):
        rng = random.Random(0)
        table = _make_table(rng, 200)
        evaluator = FidelityEvaluator()
        pair = evaluator.pair_fidelity(table, table, "a", "b")
        assert pair.p_value > 0.9
        assert pair.w_distance == pytest.approx(0.0, abs=1e-9)

    def test_broken_relationship_scores_low(self):
        """Destroying the a->b dependency must lower the conditional fidelity."""
        rng = random.Random(1)
        original = _make_table(rng, 300, noise=0.0)
        broken = _make_table(rng, 300, noise=1.0)
        evaluator = FidelityEvaluator()
        faithful = evaluator.pair_fidelity(original, original, "a", "b")
        unfaithful = evaluator.pair_fidelity(original, broken, "a", "b")
        assert unfaithful.p_value < faithful.p_value
        assert unfaithful.w_distance > faithful.w_distance

    def test_missing_synthetic_conditioning_value_penalised(self):
        original = Table({"a": ["x"] * 10 + ["y"] * 10, "b": [1] * 10 + [2] * 10})
        synthetic = Table({"a": ["x"] * 20, "b": [1] * 20})
        pair = FidelityEvaluator().pair_fidelity(original, synthetic, "a", "b")
        assert pair.p_value < 0.6

    def test_unscorable_pair_returns_none(self):
        original = Table({"a": [None, None], "b": [1, 2]})
        synthetic = Table({"a": [None, None], "b": [1, 2]})
        assert FidelityEvaluator().pair_fidelity(original, synthetic, "a", "b") is None


class TestEvaluate:
    def test_report_covers_ordered_pairs(self):
        rng = random.Random(2)
        table = _make_table(rng, 120)
        report = FidelityEvaluator().evaluate(table, table, label="self")
        # 3 columns -> up to 6 ordered pairs
        assert 1 <= len(report) <= 6
        assert report.label == "self"

    def test_high_cardinality_conditioning_columns_skipped(self):
        table = Table({
            "id": ["row{}".format(i) for i in range(100)],
            "b": [i % 3 for i in range(100)],
            "c": [i % 4 for i in range(100)],
        })
        report = FidelityEvaluator(max_conditioning_values=10).evaluate(table, table)
        assert all(pair.conditioning_column != "id" for pair in report.pairs)

    def test_requires_two_shared_columns(self):
        with pytest.raises(ValueError):
            FidelityEvaluator().evaluate(Table({"a": [1, 2]}), Table({"b": [1, 2]}))

    def test_summary_and_histogram(self):
        rng = random.Random(3)
        table = _make_table(rng, 100)
        report = FidelityEvaluator().evaluate(table, table)
        summary = report.summary()
        assert 0.0 <= summary["mean_p_value"] <= 1.0
        assert summary["n_pairs"] == len(report)
        histogram, edges = report.p_value_histogram(bins=5)
        assert histogram.sum() == pytest.approx(1.0)
        assert len(edges) == 6

    def test_fraction_above_threshold(self):
        report = FidelityReport(pairs=[
            ColumnPairFidelity("a", "b", p_value=0.5, w_distance=0.1, n_conditioning_values=2),
            ColumnPairFidelity("b", "a", p_value=0.01, w_distance=0.9, n_conditioning_values=2),
        ])
        assert report.fraction_above(0.05) == pytest.approx(0.5)

    def test_empty_report_summary_rejected(self):
        with pytest.raises(ValueError):
            FidelityReport().summary()

    def test_invalid_evaluator_params(self):
        with pytest.raises(ValueError):
            FidelityEvaluator(max_conditioning_values=0)
        with pytest.raises(ValueError):
            FidelityEvaluator(min_conditional_samples=0)


def _report(label, scores):
    return FidelityReport(label=label, pairs=[
        ColumnPairFidelity("a", "col{}".format(i), p_value=p, w_distance=1 - p,
                           n_conditioning_values=2)
        for i, p in enumerate(scores)
    ])


class TestAblation:
    def test_compare_reports_counts(self):
        baseline = _report("base", [0.2, 0.5, 0.9])
        candidate = _report("cand", [0.4, 0.5, 0.8])
        comparison = compare_reports(baseline, candidate)
        assert comparison.improved == 1
        assert comparison.worsened == 1
        assert comparison.unchanged == 1
        assert comparison.net_improved == 0
        assert comparison.compared_pairs == 3

    def test_compare_requires_shared_pairs(self):
        with pytest.raises(ValueError):
            compare_reports(_report("b", [0.1]), FidelityReport(label="c", pairs=[
                ColumnPairFidelity("x", "y", 0.5, 0.5, 1)
            ]))

    def test_summarize_trials_fig10_counts(self):
        comparisons = [
            compare_reports(_report("base", [0.2, 0.3, 0.4]), _report("cand", [0.5, 0.2, 0.6])),
            compare_reports(_report("base", [0.2, 0.3, 0.4]), _report("cand", [0.3, 0.4, 0.5])),
        ]
        counts = summarize_trials(comparisons)
        assert counts.n_trials == 2
        assert counts.max_improved == 3
        assert counts.min_improved == 2
        assert counts.avg_improved == pytest.approx(2.5)
        assert counts.max_worsened == 1
        row = counts.as_row()
        assert row["configuration"] == "cand"

    def test_summarize_requires_consistent_labels(self):
        first = compare_reports(_report("base", [0.1]), _report("cand", [0.2]))
        second = compare_reports(_report("base", [0.1]), _report("other", [0.2]))
        with pytest.raises(ValueError):
            summarize_trials([first, second])

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_trials([])


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=20),
       st.lists(st.floats(0.0, 1.0), min_size=1, max_size=20))
def test_compare_reports_partition_property(base_scores, cand_scores):
    """Property: improved + worsened + unchanged always equals the shared pair count."""
    n = min(len(base_scores), len(cand_scores))
    comparison = compare_reports(_report("b", base_scores[:n]), _report("c", cand_scores[:n]))
    assert comparison.improved + comparison.worsened + comparison.unchanged == n


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_self_evaluation_is_near_perfect_property(seed):
    """Property: evaluating a table against itself yields p-values near 1 and W near 0."""
    rng = random.Random(seed)
    table = _make_table(rng, 80)
    report = FidelityEvaluator().evaluate(table, table)
    assert min(report.p_values()) > 0.9
    assert max(report.w_distances()) == pytest.approx(0.0, abs=1e-9)
