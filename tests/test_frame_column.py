"""Unit tests for repro.frame.column."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.frame.column import Column, coerce_value, infer_dtype


class TestInferDtype:
    def test_all_ints(self):
        assert infer_dtype([1, 2, 3]) == "int"

    def test_mixed_int_float_is_float(self):
        assert infer_dtype([1, 2.5]) == "float"

    def test_all_strings(self):
        assert infer_dtype(["a", "b"]) == "str"

    def test_int_and_string_is_mixed(self):
        assert infer_dtype([1, "a"]) == "mixed"

    def test_only_missing_is_empty(self):
        assert infer_dtype([None, None]) == "empty"

    def test_nan_counts_as_missing(self):
        assert infer_dtype([float("nan"), 3]) == "int"

    def test_bools_are_bool(self):
        assert infer_dtype([True, False]) == "bool"

    def test_numpy_scalars(self):
        assert infer_dtype([np.int64(3), np.int64(4)]) == "int"
        assert infer_dtype([np.float64(3.5)]) == "float"


class TestCoerceValue:
    def test_numpy_int_becomes_python_int(self):
        value = coerce_value(np.int32(7))
        assert value == 7 and type(value) is int

    def test_numpy_float_becomes_python_float(self):
        value = coerce_value(np.float64(7.5))
        assert value == 7.5 and type(value) is float

    def test_numpy_bool_becomes_python_bool(self):
        value = coerce_value(np.bool_(True))
        assert value is True

    def test_plain_values_pass_through(self):
        assert coerce_value("x") == "x"
        assert coerce_value(None) is None


class TestColumnBasics:
    def test_requires_non_empty_name(self):
        with pytest.raises(ValueError):
            Column("", [1, 2])

    def test_len_and_getitem(self):
        col = Column("a", [10, 20, 30])
        assert len(col) == 3
        assert col[1] == 20

    def test_slice_returns_column(self):
        col = Column("a", [10, 20, 30])
        sliced = col[:2]
        assert isinstance(sliced, Column)
        assert sliced.values == [10, 20]

    def test_equality_requires_same_name_and_values(self):
        assert Column("a", [1]) == Column("a", [1])
        assert Column("a", [1]) != Column("b", [1])
        assert Column("a", [1]) != Column("a", [2])

    def test_columns_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Column("a", [1]))

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            Column("a", [1], dtype="decimal")

    def test_repr_contains_name_and_dtype(self):
        text = repr(Column("age", [1, 2, 3]))
        assert "age" in text and "int" in text


class TestColumnIntrospection:
    def test_is_numeric(self):
        assert Column("a", [1, 2]).is_numeric()
        assert Column("a", [1.5]).is_numeric()
        assert not Column("a", ["x"]).is_numeric()

    def test_missing_count(self):
        assert Column("a", [1, None, float("nan"), 4]).missing_count() == 2

    def test_is_categorical_like_small_cardinality(self):
        values = [1, 2, 3] * 30
        assert Column("a", values).is_categorical_like()

    def test_is_categorical_like_rejects_identifiers(self):
        values = list(range(500))
        assert not Column("a", values).is_categorical_like()

    def test_empty_column_is_not_categorical(self):
        assert not Column("a", []).is_categorical_like()


class TestColumnTransforms:
    def test_rename_keeps_values(self):
        col = Column("a", [1, 2]).rename("b")
        assert col.name == "b" and col.values == [1, 2]

    def test_map_applies_function(self):
        col = Column("a", [1, 2, 3]).map(lambda v: v * 10)
        assert col.values == [10, 20, 30]

    def test_astype_str(self):
        col = Column("a", [1, None, 3]).astype("str")
        assert col.values == ["1", None, "3"]

    def test_astype_int_parses_strings(self):
        col = Column("a", ["4", "5"]).astype("int")
        assert col.values == [4, 5]

    def test_astype_rejects_unknown_target(self):
        with pytest.raises(ValueError):
            Column("a", [1]).astype("bool")

    def test_take_reorders(self):
        col = Column("a", [10, 20, 30]).take([2, 0])
        assert col.values == [30, 10]


class TestColumnStatistics:
    def test_unique_preserves_first_seen_order(self):
        assert Column("a", [3, 1, 3, 2, 1]).unique() == [3, 1, 2]

    def test_unique_skips_missing(self):
        assert Column("a", [None, 1, None]).unique() == [1]

    def test_nunique(self):
        assert Column("a", [1, 1, 2]).nunique() == 2

    def test_value_counts(self):
        assert Column("a", ["x", "y", "x"]).value_counts() == {"x": 2, "y": 1}

    def test_to_numpy_numeric_handles_missing(self):
        arr = Column("a", [1, None, 3]).to_numpy()
        assert arr.dtype == float
        assert math.isnan(arr[1])

    def test_to_numpy_object_for_strings(self):
        arr = Column("a", ["x", "y"]).to_numpy()
        assert arr.dtype == object


@given(st.lists(st.one_of(st.integers(-1000, 1000), st.none()), max_size=50))
def test_unique_values_are_distinct_property(values):
    """Property: unique() never contains duplicates or missing values."""
    unique = Column("a", values).unique()
    assert len(unique) == len(set(unique))
    assert None not in unique


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
def test_value_counts_sum_to_length_property(values):
    """Property: value counts sum to the number of non-missing values."""
    counts = Column("a", values).value_counts()
    assert sum(counts.values()) == len(values)
