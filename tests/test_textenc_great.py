"""Tests for the textual encoder/decoder and the GReaT synthesizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig
from repro.textenc.corpus import CorpusBuilder
from repro.textenc.decoder import DecodeError, TextualDecoder
from repro.textenc.encoder import EncoderConfig, TextualEncoder


@pytest.fixture
def meals_table():
    return Table({
        "Name": ["Grace", "Yin", "Anson", "Maya", "Leo", "Iris"],
        "Lunch": ["Rice", "Spaghetti", "Rice", "Noodles", "Spaghetti", "Rice"],
        "Dinner": ["Steak", "Chicken", "Curry", "Steak", "Chicken", "Curry"],
        "Rating": [5, 4, 3, 5, 4, 3],
    })


class TestTextualEncoder:
    def test_encode_row_matches_fig2_format(self, toy_table):
        encoder = TextualEncoder(EncoderConfig(permute_features=False))
        sentence = encoder.encode_row(toy_table.row(0), columns=toy_table.column_names)
        assert sentence == "Name: Grace, Lunch: 1, Dinner: 2, Access Device: 1, Genre: 1"

    def test_encode_value_renders_missing_and_floats(self):
        encoder = TextualEncoder()
        assert encoder.encode_value(None) == "None"
        assert encoder.encode_value(3.0) == "3"
        assert encoder.encode_value(3.5) == "3.5"

    def test_permutation_changes_order_but_not_content(self, toy_table):
        encoder = TextualEncoder(EncoderConfig(permute_features=True, seed=1))
        sentences = [encoder.encode_row(toy_table.row(0), columns=toy_table.column_names)
                     for _ in range(10)]
        assert len(set(sentences)) > 1
        for sentence in sentences:
            for name in toy_table.column_names:
                assert name in sentence

    def test_encode_table_one_sentence_per_row(self, toy_table):
        encoder = TextualEncoder()
        assert len(encoder.encode_table(toy_table)) == toy_table.num_rows

    def test_conditional_prompt_ends_with_separator(self):
        encoder = TextualEncoder()
        prompt = encoder.conditional_prompt({"gender": "male"})
        assert prompt.endswith(", ")
        assert prompt.startswith("gender: male")


class TestTextualDecoder:
    def test_round_trip(self, toy_table):
        encoder = TextualEncoder(EncoderConfig(permute_features=False))
        decoder = TextualDecoder.for_table(toy_table)
        for row in toy_table.iter_rows():
            sentence = encoder.encode_row(row, columns=toy_table.column_names)
            assert decoder.decode_row(sentence) == row

    def test_round_trip_with_permutation(self, toy_table):
        encoder = TextualEncoder(EncoderConfig(permute_features=True, seed=3))
        decoder = TextualDecoder.for_table(toy_table)
        for row in toy_table.iter_rows():
            sentence = encoder.encode_row(row, columns=toy_table.column_names)
            assert decoder.decode_row(sentence) == row

    def test_missing_column_rejected(self, toy_table):
        decoder = TextualDecoder.for_table(toy_table)
        with pytest.raises(DecodeError):
            decoder.decode_row("Name: Grace, Lunch: 1")

    def test_missing_column_allowed_when_not_required(self, toy_table):
        decoder = TextualDecoder.for_table(toy_table)
        row = decoder.decode_row("Name: Grace, Lunch: 1", require_all=False)
        assert row["Dinner"] is None

    def test_type_coercion_failure_rejected(self, toy_table):
        decoder = TextualDecoder.for_table(toy_table)
        with pytest.raises(DecodeError):
            decoder.decode_row(
                "Name: Grace, Lunch: banana, Dinner: 2, Access Device: 1, Genre: 1"
            )

    def test_is_valid(self, toy_table):
        decoder = TextualDecoder.for_table(toy_table)
        assert decoder.is_valid("Name: Grace, Lunch: 1, Dinner: 2, Access Device: 1, Genre: 1")
        assert not decoder.is_valid("complete nonsense")

    def test_decode_table_skips_invalid(self, toy_table):
        decoder = TextualDecoder.for_table(toy_table)
        sentences = [
            "Name: Grace, Lunch: 1, Dinner: 2, Access Device: 1, Genre: 1",
            "garbage",
        ]
        assert decoder.decode_table(sentences).num_rows == 1

    def test_none_token_becomes_missing(self, toy_table):
        decoder = TextualDecoder.for_table(toy_table)
        row = decoder.decode_row("Name: None, Lunch: 1, Dinner: 2, Access Device: 1, Genre: 1")
        assert row["Name"] is None

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            TextualDecoder([])


class TestCorpusBuilder:
    def test_corpus_size_scales_with_passes(self, meals_table):
        corpus, _ = CorpusBuilder(permutation_passes=3).build(meals_table)
        assert len(corpus) == 3 * meals_table.num_rows

    def test_decoder_matches_table_schema(self, meals_table):
        _, decoder = CorpusBuilder().build(meals_table)
        assert decoder.columns == meals_table.column_names

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            CorpusBuilder().build(Table())


def _fast_config(strategy="guided", seed=0):
    return GReaTConfig(
        fine_tune=FineTuneConfig(epochs=2, batches=2, model=ModelConfig(order=4)),
        sampling_strategy=strategy,
        seed=seed,
    )


class TestGReaTSynthesizer:
    def test_fit_then_sample_schema(self, meals_table):
        synth = GReaTSynthesizer(_fast_config()).fit(meals_table)
        sample = synth.sample(8, seed=1)
        assert sample.column_names == meals_table.column_names
        assert sample.num_rows == 8

    def test_guided_samples_only_observed_values(self, meals_table):
        synth = GReaTSynthesizer(_fast_config()).fit(meals_table)
        sample = synth.sample(20, seed=2)
        for name in meals_table.column_names:
            observed = set(meals_table.column(name).unique())
            assert set(sample.column(name).unique()) <= observed

    def test_sampling_is_reproducible(self, meals_table):
        synth = GReaTSynthesizer(_fast_config()).fit(meals_table)
        assert synth.sample(5, seed=3) == synth.sample(5, seed=3)

    def test_different_seeds_differ(self, meals_table):
        synth = GReaTSynthesizer(_fast_config()).fit(meals_table)
        assert synth.sample(10, seed=1) != synth.sample(10, seed=2)

    def test_conditional_sampling_respects_prompt(self, meals_table):
        synth = GReaTSynthesizer(_fast_config()).fit(meals_table)
        prompts = [{"Name": "Grace"}, {"Name": "Yin"}]
        sample = synth.sample_conditional(prompts, seed=4)
        assert sample.column("Name").values == ["Grace", "Yin"]

    def test_free_strategy_produces_valid_rows(self, meals_table):
        synth = GReaTSynthesizer(_fast_config(strategy="free")).fit(meals_table)
        sample = synth.sample(5, seed=5)
        assert sample.num_rows == 5
        assert sample.column_names == meals_table.column_names

    def test_requires_fit_before_sampling(self):
        with pytest.raises(RuntimeError):
            GReaTSynthesizer(_fast_config()).sample(1)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            GReaTSynthesizer(_fast_config()).fit(Table())

    def test_invalid_sample_size(self, meals_table):
        synth = GReaTSynthesizer(_fast_config()).fit(meals_table)
        with pytest.raises(ValueError):
            synth.sample(0)

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            GReaTConfig(sampling_strategy="beam")

    def test_perplexity_trace_recorded(self, meals_table):
        synth = GReaTSynthesizer(_fast_config()).fit(meals_table)
        assert len(synth.perplexity_trace) >= 1
        assert all(value > 0 for value in synth.perplexity_trace)

    def test_marginal_distribution_roughly_preserved(self, meals_table):
        """The synthesizer should reproduce a dominant category's prevalence."""
        synth = GReaTSynthesizer(_fast_config()).fit(meals_table)
        sample = synth.sample(60, seed=6)
        rice_share = sample.column("Lunch").values.count("Rice") / 60
        assert 0.15 <= rice_share <= 0.85


@settings(max_examples=15, deadline=None)
@given(st.lists(st.sampled_from(["Rice", "Pasta", "Curry"]), min_size=2, max_size=8),
       st.lists(st.integers(1, 3), min_size=2, max_size=8))
def test_encoder_decoder_round_trip_property(lunches, genres):
    """Property: encode→decode is the identity for any table with str and int columns."""
    n = min(len(lunches), len(genres))
    table = Table({"Lunch": lunches[:n], "Genre": genres[:n]})
    encoder = TextualEncoder(EncoderConfig(permute_features=False))
    decoder = TextualDecoder.for_table(table)
    for row in table.iter_rows():
        assert decoder.decode_row(encoder.encode_row(row, columns=table.column_names)) == row
