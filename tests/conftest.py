"""Shared fixtures for the test suite."""

import pytest

from repro.datasets.digix import DigixConfig, generate_digix_like
from repro.datasets.toy import fig2_single_table, fig4_child_tables, fig11_membership_and_visits
from repro.frame.table import Table


@pytest.fixture
def toy_table():
    """The Fig. 2 single table with ambiguous numerical labels."""
    return fig2_single_table()


@pytest.fixture
def toy_child_tables():
    """The Fig. 4 (meals, viewing, subject) child tables."""
    return fig4_child_tables()


@pytest.fixture
def membership_tables():
    """The Fig. 11 (visits, expected parent, subject) tables."""
    return fig11_membership_and_visits()


@pytest.fixture
def small_table():
    """A small mixed-dtype table used across the frame tests."""
    return Table({
        "name": ["Grace", "Yin", "Anson", "Maya"],
        "age": [25, 31, 25, 40],
        "score": [0.5, 0.75, 0.5, 1.25],
        "city": ["Austin", "Boston", "Austin", "Denver"],
    })


@pytest.fixture(scope="session")
def tiny_digix():
    """A very small DIGIX-like dataset shared by the slower integration tests."""
    return generate_digix_like(DigixConfig(
        n_tasks=2,
        n_users_per_task=6,
        ads_rows_per_user=(2, 3),
        feeds_rows_per_user=(2, 3),
        seed=11,
    ))
