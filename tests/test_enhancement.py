"""Tests for the Data Semantic Enhancement System (Sec. 3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.enhancement.differentiability import DifferentiabilityTransform
from repro.enhancement.enhancer import DataSemanticEnhancer, EnhancerConfig
from repro.enhancement.mapping import ColumnMapping, MappingError, MappingSystem
from repro.enhancement.names_db import UniqueNameGenerator
from repro.enhancement.special import CaretToAndTransform, and_to_caret, caret_to_and
from repro.enhancement.understandability import (
    AGE_GROUPS,
    GENDER_LABELS,
    US_CITIES,
    UnderstandabilityTransform,
    default_digix_semantic_mappings,
)
from repro.frame.table import Table


class TestUniqueNameGenerator:
    def test_names_are_unique(self):
        names = UniqueNameGenerator(seed=0).generate(500)
        assert len(set(names)) == 500

    def test_reserved_names_never_emitted(self):
        generator = UniqueNameGenerator(seed=0)
        probe = generator.next_name()
        reserved_generator = UniqueNameGenerator(seed=0, reserved={probe})
        assert probe not in reserved_generator.generate(50)

    def test_deterministic_given_seed(self):
        assert UniqueNameGenerator(seed=3).generate(10) == UniqueNameGenerator(seed=3).generate(10)

    def test_exhaustion_falls_back_to_suffixes(self):
        generator = UniqueNameGenerator(seed=1)
        count = 200 * 128 + 10  # more than the first-by-last product
        names = generator.generate(count)
        assert len(set(names)) == count

    def test_names_are_single_tokens(self):
        from repro.llm.tokenizer import WordTokenizer
        tokenizer = WordTokenizer()
        for name in UniqueNameGenerator(seed=2).generate(20):
            assert len(tokenizer.tokenize(name)) == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            UniqueNameGenerator().generate(-1)


class TestMappingSystem:
    def test_forward_and_inverse_round_trip(self, toy_table):
        system = MappingSystem().add_column("Lunch", {1: "Rice", 2: "Pasta", 3: "Curry"})
        transformed = system.transform(toy_table)
        assert set(transformed.column("Lunch").unique()) <= {"Rice", "Pasta", "Curry"}
        assert system.inverse_transform(transformed) == toy_table

    def test_non_bijective_mapping_rejected(self):
        with pytest.raises(MappingError):
            ColumnMapping("x", {1: "a", 2: "a"})

    def test_unknown_values_pass_through(self):
        mapping = ColumnMapping("x", {1: "a"})
        assert mapping.apply(99) == 99
        assert mapping.invert("zzz") == "zzz"

    def test_guarantees_differentiability_detects_cross_column_repeats(self):
        system = MappingSystem()
        system.add_column("a", {1: "same"})
        system.add_column("b", {1: "same"})
        assert not system.guarantees_differentiability()

    def test_save_and_load_round_trip(self, tmp_path, toy_table):
        system = MappingSystem().add_column("Lunch", {1: "Rice", 2: "Pasta", 3: "Curry"})
        path = system.save(tmp_path / "mapping.json")
        loaded = MappingSystem.load(path)
        assert loaded.transform(toy_table) == system.transform(toy_table)

    def test_destroy_prevents_further_use(self, toy_table):
        system = MappingSystem().add_column("Lunch", {1: "Rice"})
        system.destroy()
        assert system.is_destroyed
        with pytest.raises(MappingError):
            system.transform(toy_table)
        with pytest.raises(MappingError):
            system.inverse_transform(toy_table)

    def test_mapping_for_missing_column(self):
        with pytest.raises(MappingError):
            MappingSystem().mapping_for("nope")


class TestDifferentiabilityTransform:
    def test_total_categories_counts_all_selected_columns(self, toy_table):
        transform = DifferentiabilityTransform()
        columns = ["Lunch", "Dinner", "Access Device", "Genre"]
        expected = sum(toy_table.column(c).nunique() for c in columns)
        assert transform.total_categories(toy_table, columns) == expected

    def test_no_repeated_categories_after_transform(self, toy_table):
        """Sec. 3.2.1: the transformed table contains no repeating categories."""
        columns = ["Lunch", "Dinner", "Access Device", "Genre"]
        transformed, system = DifferentiabilityTransform(seed=0).fit_transform(toy_table, columns)
        all_values = []
        for name in columns:
            all_values.extend(transformed.column(name).unique())
        assert len(set(all_values)) == len(all_values)
        assert system.guarantees_differentiability()

    def test_inverse_restores_original(self, toy_table):
        columns = ["Lunch", "Dinner", "Access Device", "Genre"]
        transformed, system = DifferentiabilityTransform(seed=0).fit_transform(toy_table, columns)
        assert system.inverse_transform(transformed) == toy_table

    def test_minted_names_not_in_table(self, toy_table):
        table = toy_table.with_column("Name", ["James_Smith"] + toy_table.column("Name").values[1:])
        _, system = DifferentiabilityTransform(seed=0).fit_transform(table, ["Lunch"])
        assert "James_Smith" not in system.all_targets()

    def test_auto_selection_skips_identifiers(self):
        table = Table({
            "id": ["row{}".format(i) for i in range(50)],
            "category": [i % 3 for i in range(50)],
        })
        selected = DifferentiabilityTransform().select_columns(table)
        assert "category" in selected
        assert "id" not in selected

    def test_unknown_column_rejected(self, toy_table):
        with pytest.raises(KeyError):
            DifferentiabilityTransform().select_columns(toy_table, ["missing"])


class TestUnderstandabilityTransform:
    def test_designed_gender_mapping_used(self):
        table = Table({"gender": [2, 3, 4, 2, 3], "age": [2, 3, 4, 5, 6]})
        transformed, system = UnderstandabilityTransform(seed=0).fit_transform(table)
        assert set(transformed.column("gender").unique()) == {"male", "female", "others"}
        assert system.inverse_transform(transformed) == table

    def test_designed_mappings_have_71_cities(self):
        assert len(US_CITIES) == 71
        assert len(set(US_CITIES)) == 71
        assert len(default_digix_semantic_mappings()["residence"]) == 71

    def test_age_groups_cover_codes_2_to_8(self):
        assert sorted(AGE_GROUPS) == [2, 3, 4, 5, 6, 7, 8]
        assert sorted(GENDER_LABELS) == [2, 3, 4]

    def test_fallback_template_is_differentiable(self):
        table = Table({"slot": [1, 2, 1], "creat": [1, 2, 2]})
        _, system = UnderstandabilityTransform(seed=0).fit_transform(table)
        assert system.guarantees_differentiability()

    def test_fallback_names_mode(self):
        table = Table({"slot": [1, 2, 1]})
        transformed, _ = UnderstandabilityTransform(seed=0, fallback="names").fit_transform(table)
        assert all(isinstance(v, str) for v in transformed.column("slot"))

    def test_invalid_fallback_rejected(self):
        with pytest.raises(ValueError):
            UnderstandabilityTransform(fallback="llm")

    def test_mapping_also_guarantees_differentiability(self):
        """Sec. 3.2.2: the understandability mapping is also differentiable."""
        table = Table({"gender": [2, 3, 4], "age": [2, 3, 4], "slot": [2, 3, 4]})
        _, system = UnderstandabilityTransform(seed=0).fit_transform(table)
        assert system.guarantees_differentiability()


class TestCaretToAnd:
    def test_value_rewrite(self):
        assert caret_to_and("20^35^42^15^5") == "20 and 35 and 42 and 15 and 5"

    def test_inverse_rewrite(self):
        assert and_to_caret("20 and 35 and 42") == "20^35^42"

    def test_round_trip(self):
        value = "7^13^2"
        assert and_to_caret(caret_to_and(value)) == value

    def test_non_string_passes_through(self):
        assert caret_to_and(7) == 7
        assert and_to_caret(None) is None

    def test_plain_string_untouched(self):
        assert caret_to_and("hello") == "hello"

    def test_table_transform_selects_caret_columns(self):
        table = Table({"interests": ["1^2", "3^4"], "city": ["a", "b"]})
        transform = CaretToAndTransform()
        assert transform.select_columns(table) == ["interests"]
        transformed = transform.transform(table)
        assert transformed.column("interests").values == ["1 and 2", "3 and 4"]
        assert transform.inverse_transform(transformed) == table

    def test_explicit_missing_column_rejected(self):
        with pytest.raises(KeyError):
            CaretToAndTransform(columns=("missing",)).select_columns(Table({"a": [1]}))


class TestDataSemanticEnhancer:
    def test_semantic_level_none_is_identity(self, toy_table):
        enhancer = DataSemanticEnhancer(EnhancerConfig(semantic_level="none"))
        assert enhancer.fit_transform(toy_table) == toy_table
        assert enhancer.inverse_transform(toy_table) == toy_table

    def test_differentiability_round_trip(self, toy_table):
        enhancer = DataSemanticEnhancer(EnhancerConfig(semantic_level="differentiability"))
        enhanced = enhancer.fit_transform(toy_table)
        assert enhanced != toy_table
        assert enhancer.inverse_transform(enhanced) == toy_table

    def test_understandability_with_special_transform(self):
        table = Table({"gender": [2, 3, 2], "interests": ["1^2", "3^4", "5^6"]})
        enhancer = DataSemanticEnhancer(EnhancerConfig(
            semantic_level="understandability", apply_special_transform=True))
        enhanced = enhancer.fit_transform(table)
        assert "and" in enhanced.column("interests")[0]
        assert enhancer.inverse_transform(enhanced) == table

    def test_transform_applies_fitted_mapping_to_other_tables(self, toy_table):
        enhancer = DataSemanticEnhancer(EnhancerConfig(semantic_level="differentiability"))
        enhancer.fit_transform(toy_table)
        subset = toy_table.select(["Lunch", "Genre"])
        transformed = enhancer.transform(subset)
        assert transformed.column_names == ["Lunch", "Genre"]

    def test_destroy_mapping_blocks_inverse(self, toy_table):
        enhancer = DataSemanticEnhancer(EnhancerConfig(semantic_level="differentiability"))
        enhanced = enhancer.fit_transform(toy_table)
        enhancer.destroy_mapping()
        with pytest.raises(MappingError):
            enhancer.inverse_transform(enhanced)

    def test_requires_fit_before_use(self, toy_table):
        enhancer = DataSemanticEnhancer()
        with pytest.raises(MappingError):
            enhancer.inverse_transform(toy_table)

    def test_invalid_semantic_level_rejected(self):
        with pytest.raises(ValueError):
            EnhancerConfig(semantic_level="super")


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(1, 6), min_size=2, max_size=30),
       st.lists(st.integers(1, 6), min_size=2, max_size=30))
def test_differentiability_inverse_is_identity_property(first, second):
    """Property: transform followed by inverse transform restores the table."""
    n = min(len(first), len(second))
    table = Table({"a": first[:n], "b": second[:n]})
    transformed, system = DifferentiabilityTransform(seed=1).fit_transform(table, ["a", "b"])
    assert system.inverse_transform(transformed) == table


@settings(max_examples=25, deadline=None)
@given(st.lists(st.lists(st.integers(0, 99), min_size=1, max_size=6), min_size=1, max_size=15))
def test_caret_round_trip_property(code_lists):
    """Property: caret→'and'→caret is the identity on caret-separated code lists."""
    values = ["^".join(str(code) for code in codes) for codes in code_lists]
    assert [and_to_caret(caret_to_and(v)) for v in values] == values
