"""Tests for the compiled training engine (batch encode, array counts, scoring).

The load-bearing property: the ``object`` and ``compiled`` training engines
must be *bit-identical* — same vocabulary ids, same integer count tables,
same perplexity traces, and (through identical seeds) the same synthetic
tables end to end.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.compiled import CompiledNGramModel
from repro.llm.finetune import FineTuneConfig, FineTuner
from repro.llm.ngram_model import (
    ModelConfig,
    NGramLanguageModel,
    perplexity_from_probabilities,
    _sample_masses,
)
from repro.llm.sampler import SamplerConfig
from repro.llm.tokenizer import WordTokenizer
from repro.llm.training import (
    ArrayTrainedNGramModel,
    TRAINING_ENGINES,
    accumulate_counts,
    resolve_training_engine,
)

WORDS = ["Name", ":", "Grace", "Yin", "Lunch", "Rice", "3", ",", "x", "20.5"]


def _random_corpus(seed: int, n_sentences: int = 60) -> list[str]:
    rng = random.Random(seed)
    return [
        " ".join(rng.choice(WORDS) for _ in range(rng.randrange(2, 10)))
        for _ in range(n_sentences)
    ]


class TestEncodedCorpus:
    def test_matches_per_sentence_encode(self):
        corpus = _random_corpus(0) + ["", "a b c"]
        tokenizer = WordTokenizer().fit(corpus)
        encoded = tokenizer.encode_corpus(corpus)
        assert encoded.n_sentences == len(corpus)
        for index, sentence in enumerate(corpus):
            assert encoded.sentence(index) == tokenizer.encode(sentence)

    def test_fit_encode_matches_fit_then_encode(self):
        corpus = _random_corpus(1)
        one_shot = WordTokenizer()
        encoded = one_shot.fit_encode_corpus(corpus)
        two_step = WordTokenizer().fit(corpus)
        assert one_shot.vocabulary.token_to_id == two_step.vocabulary.token_to_id
        reference = two_step.encode_corpus(corpus)
        assert np.array_equal(encoded.ids, reference.ids)
        assert np.array_equal(encoded.offsets, reference.offsets)

    def test_sentinel_in_corpus_falls_back(self):
        corpus = ["a\x00b c", "d e"]
        tokenizer = WordTokenizer().fit(corpus)
        encoded = tokenizer.encode_corpus(corpus)
        for index, sentence in enumerate(corpus):
            assert encoded.sentence(index) == tokenizer.encode(sentence)

    def test_sentinel_character_keeps_its_vocabulary_entry(self):
        """A corpus genuinely containing the scan sentinel still gets a
        vocabulary id for it — only the inserted separators are discounted."""
        corpus = ["a \x00 b", "\x00 c"]
        tokenizer = WordTokenizer().fit(corpus)
        assert "\x00" in tokenizer.vocabulary
        unk = tokenizer.vocabulary.unk_id
        encoded = tokenizer.encode_corpus(corpus)
        assert unk not in encoded.ids

    def test_slice_rebases_offsets(self):
        corpus = _random_corpus(2, n_sentences=10)
        tokenizer = WordTokenizer().fit(corpus)
        encoded = tokenizer.encode_corpus(corpus)
        part = encoded.slice(3, 7)
        assert part.n_sentences == 4
        for index in range(4):
            assert part.sentence(index) == tokenizer.encode(corpus[3 + index])

    def test_scored_positions_count(self):
        corpus = ["a b", "c"]
        tokenizer = WordTokenizer().fit(corpus)
        encoded = tokenizer.encode_corpus(corpus)
        # every token except each sentence's <bos> is a scored position
        assert encoded.n_scored_positions == sum(
            len(tokenizer.encode(s)) - 1 for s in corpus)


class TestAccumulateCounts:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_matches_dict_training(self, order):
        corpus = _random_corpus(3)
        tokenizer = WordTokenizer().fit(corpus)
        reference = NGramLanguageModel(tokenizer, ModelConfig(order=order)).fit(corpus)
        frozen = CompiledNGramModel(reference)
        encoded = tokenizer.encode_corpus(corpus)
        counts = accumulate_counts(encoded, order, len(tokenizer.vocabulary))
        direct = CompiledNGramModel.from_counts(counts, tokenizer,
                                                ModelConfig(order=order))
        for k in range(1, order):
            for name in ("_keys", "_row_ptr", "_tokens", "_counts", "_totals",
                         "_entry_keys", "_powers"):
                assert np.array_equal(getattr(frozen, name)[k],
                                      getattr(direct, name)[k]), (k, name)
        assert np.array_equal(frozen._tokens0, direct._tokens0)
        assert np.array_equal(frozen._counts0, direct._counts0)
        assert frozen._total0 == direct._total0
        assert frozen._scale0 == direct._scale0 and frozen._base0 == direct._base0

    def test_unpackable_vocabulary_returns_none(self):
        corpus = ["a b c"]
        tokenizer = WordTokenizer().fit(corpus)
        encoded = tokenizer.encode_corpus(corpus)
        assert accumulate_counts(encoded, order=40,
                                 vocab_size=len(tokenizer.vocabulary)) is None

    def test_scaled_counts_match_repeated_epochs(self):
        corpus = _random_corpus(4)
        tokenizer = WordTokenizer().fit(corpus)
        reference = NGramLanguageModel(tokenizer, ModelConfig(order=3)).fit(corpus, epochs=3)
        frozen = CompiledNGramModel(reference)
        encoded = tokenizer.encode_corpus(corpus)
        counts = accumulate_counts(encoded, 3, len(tokenizer.vocabulary)).scaled(3)
        direct = CompiledNGramModel.from_counts(counts, tokenizer, ModelConfig(order=3))
        for k in range(1, 3):
            assert np.array_equal(frozen._counts[k], direct._counts[k])
            assert np.array_equal(frozen._totals[k], direct._totals[k])
        assert frozen._total0 == direct._total0


class TestScoreCorpus:
    @pytest.mark.parametrize("order", [1, 2, 3, 5])
    def test_matches_object_scoring(self, order):
        corpus = _random_corpus(5)
        held_out = _random_corpus(6, n_sentences=20)
        tokenizer = WordTokenizer().fit(corpus + held_out)
        model = NGramLanguageModel(tokenizer, ModelConfig(order=order)).fit(corpus)
        compiled = model.compiled_model()
        encoded = tokenizer.encode_corpus(held_out)
        batched = compiled.score_corpus(encoded.ids, encoded.offsets)
        reference = []
        for sentence in held_out:
            ids = tokenizer.encode(sentence)
            reference.extend(model._position_probability(ids, position)
                             for position in range(1, len(ids)))
        assert np.array_equal(batched, np.asarray(reference))
        assert model.perplexity(held_out) == perplexity_from_probabilities(batched)

    def test_chunked_scoring_is_identical(self):
        corpus = _random_corpus(7)
        tokenizer = WordTokenizer().fit(corpus)
        model = NGramLanguageModel(tokenizer, ModelConfig(order=3)).fit(corpus)
        compiled = model.compiled_model()
        encoded = tokenizer.encode_corpus(corpus)
        whole = compiled.score_corpus(encoded.ids, encoded.offsets)
        chunked = compiled.score_corpus(encoded.ids, encoded.offsets, chunk_size=7)
        assert np.array_equal(whole, chunked)


class TestTrainingEngineSwitch:
    def test_resolve_explicit(self):
        assert resolve_training_engine("object") == "object"
        assert resolve_training_engine("compiled") == "compiled"
        with pytest.raises(ValueError):
            resolve_training_engine("gpu")

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAINING_ENGINE", "object")
        assert resolve_training_engine("auto") == "object"
        monkeypatch.setenv("REPRO_TRAINING_ENGINE", "bogus")
        assert resolve_training_engine(None) == "compiled"
        monkeypatch.delenv("REPRO_TRAINING_ENGINE")
        assert resolve_training_engine() == "compiled"

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            FineTuneConfig(engine="gpu")

    def test_engines_are_concrete(self):
        assert set(TRAINING_ENGINES) == {"object", "compiled"}


def _fine_tune_pair(corpus, order, epochs, batches, validation_fraction, seed):
    results = {}
    for engine in TRAINING_ENGINES:
        config = FineTuneConfig(epochs=epochs, batches=batches,
                                validation_fraction=validation_fraction,
                                seed=seed, model=ModelConfig(order=order),
                                engine=engine)
        results[engine] = FineTuner(WordTokenizer(), config).fine_tune(corpus)
    return results["object"], results["compiled"]


class TestEngineEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 16),
        order=st.integers(min_value=1, max_value=4),
        epochs=st.integers(min_value=1, max_value=3),
        batches=st.integers(min_value=1, max_value=4),
        validation_fraction=st.sampled_from([0.0, 0.1, 0.3]),
    )
    def test_bitwise_identical_training(self, seed, order, epochs, batches,
                                        validation_fraction):
        """Property: counts, vocabulary, and perplexity trace match exactly."""
        corpus = _random_corpus(seed, n_sentences=30)
        object_result, compiled_result = _fine_tune_pair(
            corpus, order, epochs, batches, validation_fraction, seed)
        assert (object_result.model.tokenizer.vocabulary.token_to_id
                == compiled_result.model.tokenizer.vocabulary.token_to_id)
        assert object_result.perplexity_trace == compiled_result.perplexity_trace
        assert object_result.train_size == compiled_result.train_size
        assert object_result.validation_size == compiled_result.validation_size
        assert compiled_result.engine == "compiled"
        assert isinstance(compiled_result.model, ArrayTrainedNGramModel)
        # materialise the array model's dict tables and compare integer counts
        array_model = compiled_result.model
        array_model.distribution_components([])
        for k in range(order):
            assert dict(object_result.model._counts[k]) == dict(array_model._counts[k])
            assert (dict(object_result.model._context_totals[k])
                    == dict(array_model._context_totals[k]))
        assert (object_result.model.trained_sentences
                == array_model.trained_sentences)

    def test_validation_fraction_zero_edge(self):
        corpus = _random_corpus(11, n_sentences=12)
        object_result, compiled_result = _fine_tune_pair(
            corpus, order=3, epochs=2, batches=2, validation_fraction=0.0, seed=1)
        assert len(object_result.perplexity_trace) == 1
        assert object_result.perplexity_trace == compiled_result.perplexity_trace
        assert object_result.validation_size == compiled_result.validation_size == 0

    def test_identical_synthetic_tables(self):
        rng = random.Random(9)
        table = Table({
            "city": [rng.choice(["austin", "boston", "denver"]) for _ in range(80)],
            "clicks": [rng.randrange(8) for _ in range(80)],
        })
        samples = {}
        for engine in TRAINING_ENGINES:
            config = GReaTConfig(
                fine_tune=FineTuneConfig(epochs=2, batches=2, seed=4,
                                         model=ModelConfig(order=4), engine=engine),
                sampler=SamplerConfig(temperature=0.9, top_k=8, seed=4),
                seed=4,
            )
            synthesizer = GReaTSynthesizer(config).fit(table)
            assert synthesizer.training_engine == engine
            samples[engine] = synthesizer.sample(120, seed=13).to_records()
        assert samples["object"] == samples["compiled"]

    def test_direct_freeze_of_array_model_materialises_dicts(self):
        """CompiledNGramModel(model) on an array-trained model must freeze the
        real counts, not the (lazily empty) dict tables."""
        corpus = _random_corpus(14, n_sentences=20)
        config = FineTuneConfig(epochs=2, batches=1, validation_fraction=0.0,
                                seed=0, model=ModelConfig(order=3), engine="compiled")
        array_model = FineTuner(WordTokenizer(), config).fine_tune(corpus).model
        direct = CompiledNGramModel(array_model)
        cached = array_model.compiled_model()
        assert direct._total0 == cached._total0 > 0
        for k in range(1, 3):
            assert np.array_equal(direct._keys[k], cached._keys[k])
            assert np.array_equal(direct._counts[k], cached._counts[k])

    def test_array_model_supports_incremental_fit(self):
        """Re-fitting an array-trained model falls back to the dict tables."""
        corpus = _random_corpus(12, n_sentences=15)
        extra = _random_corpus(13, n_sentences=5)
        tokenizer = WordTokenizer().fit(corpus + extra)
        config = FineTuneConfig(epochs=1, batches=1, validation_fraction=0.0,
                                shuffle=False, seed=0, model=ModelConfig(order=3),
                                engine="compiled")
        array_model = FineTuner(tokenizer, config).fine_tune(corpus).model
        array_model.fit(extra)
        reference = NGramLanguageModel(tokenizer, ModelConfig(order=3))
        reference.fit(corpus).fit(extra)
        for k in range(3):
            assert dict(reference._counts[k]) == dict(array_model._counts[k])
        # the compiled view after the incremental fit reflects the new counts
        frozen = array_model.compiled_model()
        assert frozen._total0 == reference.compiled_model()._total0


class TestSampleMassesKernel:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 16),
        size=st.integers(min_value=1, max_value=40),
        top_k=st.integers(min_value=1, max_value=45),
        temperature=st.sampled_from([0.0, 0.7, 1.0]),
    )
    def test_argpartition_matches_stable_argsort(self, seed, size, top_k, temperature):
        """Satellite pin: the argpartition top-k draws exactly what the legacy
        full stable argsort drew, tied masses included."""
        rng = np.random.default_rng(seed)
        # coarse quantisation forces plenty of ties, including at the boundary
        masses = np.round(rng.random(size) * 4) / 4

        def legacy(masses, py_rng, temperature, top_k):
            if top_k is not None and 0 < top_k < masses.size:
                candidate_ids = np.argsort(-masses, kind="stable")[:top_k]
                candidate_masses = masses[candidate_ids]
            else:
                candidate_ids = None
                candidate_masses = masses
            if temperature <= 0:
                best = int(np.argmax(candidate_masses))
                return int(candidate_ids[best]) if candidate_ids is not None else best
            weights = candidate_masses ** (1.0 / temperature)
            total = float(weights.sum())
            if total <= 0:
                chosen = py_rng.randrange(candidate_masses.size)
                return int(candidate_ids[chosen]) if candidate_ids is not None else chosen
            threshold = py_rng.random() * total
            cumulative = np.cumsum(weights)
            chosen = int(np.searchsorted(cumulative, threshold, side="left"))
            chosen = min(chosen, candidate_masses.size - 1)
            return int(candidate_ids[chosen]) if candidate_ids is not None else chosen

        for draw_seed in range(5):
            assert (_sample_masses(masses, random.Random(draw_seed),
                                   temperature=temperature, top_k=top_k)
                    == legacy(masses, random.Random(draw_seed),
                              temperature, top_k))


class TestPerplexityReduction:
    def test_floor_applied(self):
        probabilities = np.array([0.5, 0.0, 1e-30])
        expected = math.exp(-(math.fsum([
            float(np.log(0.5)), float(np.log(1e-12)), float(np.log(1e-12))])) / 3)
        assert perplexity_from_probabilities(probabilities) == pytest.approx(expected)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            perplexity_from_probabilities(np.empty(0))

    def test_perplexity_rejects_empty_corpus(self):
        tokenizer = WordTokenizer().fit(["a b"])
        model = NGramLanguageModel(tokenizer, ModelConfig(order=2)).fit(["a b"])
        with pytest.raises(ValueError):
            model.perplexity([])
