"""Tests for the observability plane: tracer, schema, metrics, HTTP surface.

The properties under test mirror the observability guarantees:

* disabled tracing is a no-op (the default) and enabling it never changes
  sampled output;
* spans nest through the context variable, cross executor threads via
  ``contextvars.copy_context()`` and cross worker processes via explicit
  ``(trace_id, span_id, submitted_us)`` frames — one HTTP request against
  a crashing process pool yields a single stitched trace tree containing
  the server span, queue wait, the failed attempt, the retry and the
  per-chunk generation spans;
* the number of ``pool.retry`` spans equals the pool's ``tasks_retried``
  counter, and a request killed by its deadline carries a
  ``deadline_exceeded`` event;
* the span schema is closed (no unknown keys, IDs resolve, events are
  monotonic) and every emitted span passes it;
* the labeled metrics registry renders identically into JSON ``/stats``
  and Prometheus ``/metrics``, and histogram quantiles interpolate within
  their bucket instead of reporting the bare upper bound;
* the server honors ``X-Request-Id``, emits one structured access-log
  line per request, and exposes the ring buffer at ``GET /trace``.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro import faults
from repro.cli import main
from repro.connecting.connector import ConnectorConfig
from repro.enhancement.enhancer import EnhancerConfig
from repro.obs import trace as obs
from repro.obs.prom import CONTENT_TYPE, prometheus_text
from repro.obs.schema import validate_lines, validate_span
from repro.obs.view import summary_rows, tree_rows
from repro.pipelines.config import PipelineConfig
from repro.pipelines.greater import GReaTERPipeline
from repro.serving import (
    LatencyHistogram,
    MetricsRegistry,
    ServingConfig,
    SynthesisServer,
    SynthesisService,
    WorkerPool,
)
from repro.serving.service import DeadlineExceeded


@pytest.fixture(autouse=True)
def _tracing_disabled_after():
    """Tests arm the process-global tracer; never leak it across tests."""
    yield
    obs.disable()
    faults.disarm()


def _config(seed=0):
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="understandability", seed=seed),
        connector=ConnectorConfig(independence_method="threshold_mean",
                                  remove_noisy_columns=False),
        generation_engine="compiled",
        training_engine="compiled",
    )


@pytest.fixture(scope="module")
def bundle(tiny_digix, tmp_path_factory):
    trial = tiny_digix.trials()[0]
    fitted = GReaTERPipeline(_config()).fit(trial.ads, trial.feeds)
    path = tmp_path_factory.mktemp("bundles") / "greater"
    fitted.save(path)
    return path


class _RunningServer:
    """Run a SynthesisServer on a background event loop."""

    def __init__(self, service, max_queue=8):
        self.server = SynthesisServer(service, max_queue=max_queue)
        self._loop = asyncio.new_event_loop()
        self._thread = None

    def __enter__(self):
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert started.wait(10), "server did not start"
        return self.server

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        return False


def _http(port, method, path, payload=None, headers=None):
    """Raw client that also returns the response headers."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json",
                                    **(headers or {})})
        response = connection.getresponse()
        raw = response.read().decode("utf-8")
        return (response.status, json.loads(raw) if raw else None,
                dict(response.getheaders()))
    finally:
        connection.close()


class TestTracerCore:
    def test_disabled_is_noop(self):
        assert not obs.enabled()
        assert obs.span("anything") is obs.NULL_SPAN
        assert obs.current_context() is None
        with obs.span("nested", attrs={"k": 1}) as sp:
            sp.set_attr("x", 2)
            sp.add_event("boom")
        obs.emit_span("late", None, 0, 5)
        assert obs.ring_snapshot() is None

    def test_nesting_links_parent_and_trace(self):
        sink = obs.configure("ring:64")
        with obs.span("outer") as outer:
            assert obs.current_context() == (outer.trace_id, outer.span_id)
            with obs.span("inner") as inner:
                pass
        records = {r["name"]: r for r in sink.snapshot()["spans"]}
        assert records["inner"]["trace_id"] == records["outer"]["trace_id"]
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["parent_id"] is None
        assert inner.trace_id == outer.trace_id

    def test_exception_marks_error_with_event(self):
        sink = obs.configure("ring:64")
        with pytest.raises(ValueError):
            with obs.span("broken"):
                raise ValueError("kaput")
        record = sink.snapshot()["spans"][0]
        assert record["status"] == "error"
        event = record["events"][0]
        assert event["name"] == "error"
        assert event["attrs"] == {"type": "ValueError", "message": "kaput"}
        assert validate_span(record) == []

    def test_file_sink_emits_schema_valid_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.configure(str(path))
        with obs.span("a", attrs={"n": 3}):
            with obs.span("b"):
                pass
        obs.disable()  # closes the file descriptor
        spans = list(obs.iter_trace_lines(str(path)))
        assert [s["name"] for s in spans] == ["b", "a"]  # finish order
        assert validate_lines(spans) == []

    def test_ring_caps_and_counts_drops(self):
        obs.configure("ring:4")
        for index in range(10):
            with obs.span("s{}".format(index)):
                pass
        snapshot = obs.ring_snapshot()
        assert snapshot["capacity"] == 4
        assert snapshot["emitted"] == 10
        assert snapshot["dropped"] == 6
        assert [s["name"] for s in snapshot["spans"]] == ["s6", "s7", "s8", "s9"]

    def test_sink_spec_parsing_rejects_garbage(self):
        assert obs.parse_sink_spec("stderr") == ("stderr", None)
        assert obs.parse_sink_spec("ring:9") == ("ring", 9)
        assert obs.parse_sink_spec("/tmp/x.jsonl") == ("file", "/tmp/x.jsonl")
        with pytest.raises(ValueError):
            obs.parse_sink_spec("ring:zero")
        with pytest.raises(ValueError):
            obs.parse_sink_spec("ring:0")
        with pytest.raises(ValueError):
            obs.parse_sink_spec("  ")

    def test_serving_config_validates_trace_spec(self):
        with pytest.raises(ValueError):
            ServingConfig(trace="ring:banana")

    def test_schema_rejects_unknown_and_missing_keys(self):
        obs.configure("ring:8")
        with obs.span("ok"):
            pass
        record = dict(obs.ring_snapshot()["spans"][0])
        assert validate_span(record) == []
        extra = dict(record, surprise=1)
        assert any("surprise" in error for error in validate_span(extra))
        missing = {k: v for k, v in record.items() if k != "pid"}
        assert validate_span(missing)


class TestQuantileInterpolation:
    def test_mid_bucket_interpolates(self):
        histogram = LatencyHistogram(buckets=(0.1, 0.2))
        for _ in range(10):
            histogram.observe(0.15)
        # all mass in (0.1, 0.2]: p50 sits mid-bucket, not at the 0.2 bound
        assert histogram.quantile(0.5) == pytest.approx(0.15)
        assert histogram.quantile(0.1) == pytest.approx(0.11)
        assert histogram.quantile(1.0) == pytest.approx(0.2)

    def test_overflow_bucket_reports_max(self):
        histogram = LatencyHistogram(buckets=(0.1,))
        histogram.observe(0.05)
        histogram.observe(7.0)
        assert histogram.quantile(1.0) == 7.0
        # rank 1 of 1 in (0, 0.1]: interpolation reaches the bucket edge
        assert histogram.quantile(0.0) == pytest.approx(0.1)

    def test_empty_is_zero(self):
        assert LatencyHistogram().quantile(0.5) == 0.0


class TestMetricsRegistry:
    def test_labeled_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", endpoint="sample_table").increment()
        registry.counter("requests_total", endpoint="sample_table").increment()
        registry.counter("requests_total", endpoint="sample_rows").increment()
        registry.gauge("rss_bytes", worker="0").set_max(100)
        registry.gauge("rss_bytes", worker="0").set_max(50)  # keeps the peak
        counters = registry.counters_snapshot()
        assert counters['requests_total{endpoint="sample_table"}'] == 2
        assert counters['requests_total{endpoint="sample_rows"}'] == 1
        assert registry.gauges_snapshot()['rss_bytes{worker="0"}'] == 100.0

    def test_prometheus_text_rendering(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", endpoint="sample_table").increment(3)
        registry.gauge("in_flight").set(2)
        with registry.histogram("sample_table").time():
            pass
        text = prometheus_text(registry, extra_stats={
            "server": {"accepted": 5, "draining": False}, "latency": {"x": 1}})
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="sample_table"} 3' in text
        assert "# TYPE repro_in_flight gauge" in text
        assert "# TYPE repro_latency_seconds histogram" in text
        assert 'repro_latency_seconds_bucket{endpoint="sample_table",le="+Inf"} 1' in text
        assert 'repro_latency_seconds_count{endpoint="sample_table"} 1' in text
        assert "repro_server_accepted 5" in text
        assert "repro_server_draining 0" in text
        assert "repro_latency_x" not in text  # histograms ride the native series
        assert text.endswith("\n")
        assert CONTENT_TYPE.startswith("text/plain")


class TestStageSpans:
    def test_sample_table_emits_stage_spans(self, bundle):
        sink = obs.configure("ring:4096")
        with SynthesisService.from_bundle(bundle, ServingConfig(
                shards=1, block_size=2, cache_bytes=0)) as service:
            traced = service.sample_table(6, seed=5)
        spans = sink.snapshot()["spans"]
        names = {span["name"] for span in spans}
        assert {"service.sample_table", "stage.generate", "stage.decode"} <= names
        assert validate_lines(spans) == []
        service_span = next(s for s in spans if s["name"] == "service.sample_table")
        stage = next(s for s in spans if s["name"] == "stage.generate")
        assert stage["trace_id"] == service_span["trace_id"]
        obs.disable()
        with SynthesisService.from_bundle(bundle, ServingConfig(
                shards=1, block_size=2, cache_bytes=0)) as service:
            assert service.sample_table(6, seed=5) == traced

    def test_counters_in_stats(self, bundle):
        with SynthesisService.from_bundle(bundle, ServingConfig(
                cache_bytes=0)) as service:
            service.sample_table(4, seed=1)
            service.sample_rows(3, seed=2)
            stats = service.stats()
        assert stats["counters"]['requests_total{endpoint="sample_table"}'] == 1
        assert stats["counters"]['requests_total{endpoint="sample_rows"}'] == 1


class TestProcessPoolTracing:
    def test_crash_retry_trace_is_one_stitched_tree(self, bundle, tmp_path):
        """The acceptance criterion: one HTTP request against a 4-worker pool
        with a worker-crash fault produces a single trace tree with the
        server span, queue wait, failed attempt, retry and per-chunk
        generation spans.  (``@2`` rather than ``@1``: fault counters are
        per worker life, so ``@1`` would crash every respawn's first task
        and no attempt could ever succeed.)"""
        trace_path = tmp_path / "trace.jsonl"
        obs.configure(str(trace_path))
        with SynthesisService.from_bundle(bundle, ServingConfig(
                shards=4, block_size=1, cache_bytes=0, executor="process",
                retries=5, retry_backoff_s=0.01, breaker_threshold=0,
                faults="worker_crash@2")) as service:
            with _RunningServer(service) as server:
                status, body, headers = _http(
                    server.port, "POST", "/sample_table", {"n": 6, "seed": 3})
        obs.disable()
        assert status == 200
        assert body["rows"]
        spans = list(obs.iter_trace_lines(str(trace_path)))
        assert validate_lines(spans) == []
        request_spans = [s for s in spans if s["name"] == "server.request"]
        assert len(request_spans) == 1
        trace_id = request_spans[0]["trace_id"]
        assert headers["X-Request-Id"] == request_spans[0]["attrs"]["request_id"]
        in_trace = {s["name"] for s in spans if s["trace_id"] == trace_id}
        assert {"server.request", "server.queue_wait", "service.sample_table",
                "pool.queue_wait", "worker.task", "stage.generate",
                "pool.attempt_failed", "pool.retry"} <= in_trace
        # every span of the request belongs to the one tree
        assert {s["trace_id"] for s in spans
                if s["name"].startswith(("pool.", "worker.", "stage.",
                                         "server.", "service."))} == {trace_id}
        worker_pids = {s["pid"] for s in spans if s["name"] == "worker.task"}
        assert worker_pids and request_spans[0]["pid"] not in worker_pids

        rows = tree_rows(spans, trace_id=trace_id)
        assert rows[0]["span"] == "server.request"
        assert any(row["span"].strip() == "pool.retry" for row in rows)
        summary = {row["span"] for row in summary_rows(spans)}
        assert "worker.task" in summary

        assert main(["trace", "tree", str(trace_path),
                     "--trace-id", trace_id[:8]]) == 0
        assert main(["trace", "summary", str(trace_path)]) == 0
        assert main(["trace", "slow", str(trace_path), "--top", "3"]) == 0

    def test_retry_span_count_equals_retried_counter(self, bundle):
        sink = obs.configure("ring:65536")
        metrics = MetricsRegistry()
        pool = WorkerPool(bundle, workers=2, block_size=1, retries=5,
                          retry_backoff_s=0.01, breaker_threshold=0,
                          faults_spec="worker_crash%7", metrics=metrics)
        try:
            with obs.span("test.batch"):
                pool.sample_blocks([(index, 1, 5000 + index)
                                    for index in range(30)])
            stats = pool.stats()
        finally:
            pool.close()
        spans = sink.snapshot()["spans"]
        retry_spans = [s for s in spans if s["name"] == "pool.retry"]
        assert stats["tasks_retried"] > 0
        assert len(retry_spans) == stats["tasks_retried"]
        counted = sum(value for name, value
                      in metrics.counters_snapshot().items()
                      if name.startswith("tasks_retried_total"))
        assert counted == stats["tasks_retried"]

    def test_deadline_trace_ends_with_deadline_event(self, bundle):
        sink = obs.configure("ring:4096")
        pool = WorkerPool(bundle, workers=1, block_size=4,
                          faults_spec="task_hang@2=30")
        try:
            with obs.span("test.deadline"):
                pool.sample_blocks([(0, 2, 77)])  # warm-up, fault fires next
                with pytest.raises(DeadlineExceeded):
                    task = pool.submit("ping", None, deadline_s=0.4)
                    task.result()
        finally:
            pool.close()
        spans = sink.snapshot()["spans"]
        deadline_spans = [s for s in spans if s["name"] == "pool.deadline"]
        assert len(deadline_spans) == 1
        assert deadline_spans[0]["status"] == "error"
        assert [e["name"] for e in deadline_spans[0]["events"]] == ["deadline_exceeded"]

    def test_worker_peak_rss_in_stats(self, bundle):
        with SynthesisService.from_bundle(bundle, ServingConfig(
                shards=2, block_size=2, cache_bytes=0,
                executor="process")) as service:
            service.sample_table(6, seed=1)
            stats = service.stats()
        rss = stats["pool"]["worker_peak_rss_bytes"]
        assert set(rss) == {"0", "1"}
        assert all(value > 0 for value in rss.values())
        assert stats["pool"]["max_worker_peak_rss_bytes"] == max(rss.values())


class TestHttpSurface:
    def test_request_id_honored_and_access_logged(self, bundle, capfd):
        with SynthesisService.from_bundle(bundle, ServingConfig(
                cache_bytes=0)) as service:
            with _RunningServer(service) as server:
                status, _, headers = _http(
                    server.port, "POST", "/sample_table", {"n": 2},
                    headers={"X-Request-Id": "feedfacefeedface"})
                assert status == 200
                assert headers["X-Request-Id"] == "feedfacefeedface"
                # unusable ids (spaces, punctuation) are replaced, not echoed
                _, _, generated = _http(
                    server.port, "GET", "/healthz",
                    headers={"X-Request-Id": "not a valid id!!"})
                assert generated["X-Request-Id"] != "not a valid id!!"
        captured = capfd.readouterr().err
        access = [json.loads(line) for line in captured.splitlines()
                  if '"event": "access"' in line or '"event":"access"' in line]
        assert len(access) == 2
        first = access[0]
        assert first["method"] == "POST"
        assert first["path"] == "/sample_table"
        assert first["status"] == 200
        assert first["request_id"] == "feedfacefeedface"
        assert first["duration_ms"] >= 0

    def test_client_request_id_becomes_trace_id(self, bundle):
        sink = obs.configure("ring:4096")
        with SynthesisService.from_bundle(bundle, ServingConfig(
                cache_bytes=0)) as service:
            with _RunningServer(service) as server:
                status, _, _ = _http(server.port, "POST", "/sample_table",
                                     {"n": 2},
                                     headers={"X-Request-Id": "abcdef0123456789"})
        assert status == 200
        spans = sink.snapshot()["spans"]
        request_span = next(s for s in spans if s["name"] == "server.request")
        assert request_span["trace_id"] == "abcdef0123456789"

    def test_metrics_endpoint_serves_prometheus_text(self, bundle):
        with SynthesisService.from_bundle(bundle, ServingConfig(
                cache_bytes=0)) as service:
            with _RunningServer(service) as server:
                _http(server.port, "POST", "/sample_table", {"n": 2})
                connection = http.client.HTTPConnection(
                    "127.0.0.1", server.port, timeout=60)
                try:
                    connection.request("GET", "/metrics")
                    response = connection.getresponse()
                    text = response.read().decode("utf-8")
                    content_type = response.getheader("Content-Type")
                finally:
                    connection.close()
        assert response.status == 200
        assert content_type == CONTENT_TYPE
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="sample_table"} 1' in text
        assert 'repro_http_requests_total{path="/sample_table",status="200"} 1' in text
        assert "repro_server_accepted" in text

    def test_trace_endpoint_requires_ring(self, bundle):
        with SynthesisService.from_bundle(bundle, ServingConfig(
                cache_bytes=0)) as service:
            with _RunningServer(service) as server:
                status, body, _ = _http(server.port, "GET", "/trace")
                assert status == 404
                assert "ring" in body["error"]
                obs.configure("ring:128")
                _http(server.port, "POST", "/sample_table", {"n": 2})
                status, body, _ = _http(server.port, "GET", "/trace")
        assert status == 200
        assert body["capacity"] == 128
        assert any(span["name"] == "server.request" for span in body["spans"])
        assert validate_lines(body["spans"]) == []

    def test_stats_parity_includes_counters(self, bundle):
        from repro.serving import request_json

        with SynthesisService.from_bundle(bundle, ServingConfig(
                cache_bytes=0)) as service:
            with _RunningServer(service) as server:
                service.sample_table(2, seed=1)
                status, remote = request_json("127.0.0.1", server.port,
                                              "GET", "/stats")
            local = service.stats()
        assert status == 200
        assert set(remote) == set(local) | {"server"}
        # the /stats request itself lands in http_requests_total after the
        # remote snapshot was cut; every series present remotely must match
        assert remote["counters"]
        assert all(local["counters"][name] == value
                   for name, value in remote["counters"].items())
