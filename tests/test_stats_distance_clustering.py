"""Unit tests for repro.stats.distance, histogram and clustering."""

import numpy as np
import pytest
import scipy.cluster.hierarchy
import scipy.spatial.distance
import scipy.stats
from hypothesis import given, settings, strategies as st

from repro.stats.clustering import (
    AgglomerativeClustering,
    fcluster_by_count,
    fcluster_by_distance,
)
from repro.stats.distance import (
    total_variation_distance,
    wasserstein_distance,
    wasserstein_from_samples,
)
from repro.stats.histogram import categorical_distribution, empirical_cdf, normalized_histogram


class TestWasserstein:
    def test_identical_samples_zero(self):
        assert wasserstein_from_samples([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_shifted_samples(self):
        assert wasserstein_from_samples([0, 1, 2], [1, 2, 3]) == pytest.approx(1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=70)
        b = rng.normal(loc=0.4, scale=1.3, size=50)
        ours = wasserstein_from_samples(a, b)
        theirs = scipy.stats.wasserstein_distance(a, b)
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            wasserstein_from_samples([], [1.0])

    def test_categorical_distribution_form(self):
        dist_a = {0: 0.5, 1: 0.5}
        dist_b = {0: 0.5, 1: 0.5}
        assert wasserstein_distance(dist_a, dist_b) == pytest.approx(0.0)

    def test_categorical_mass_shift(self):
        dist_a = {0: 1.0, 1: 0.0}
        dist_b = {0: 0.0, 1: 1.0}
        assert wasserstein_distance(dist_a, dist_b) == pytest.approx(1.0)

    def test_categorical_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            wasserstein_distance({0: 0.0}, {0: 1.0})


class TestTotalVariation:
    def test_identical(self):
        assert total_variation_distance({"a": 2, "b": 2}, {"a": 1, "b": 1}) == pytest.approx(0.0)

    def test_disjoint(self):
        assert total_variation_distance({"a": 1}, {"b": 1}) == pytest.approx(1.0)

    def test_bounded(self):
        value = total_variation_distance({"a": 3, "b": 1}, {"a": 1, "b": 3})
        assert 0.0 <= value <= 1.0


class TestHistogramHelpers:
    def test_empirical_cdf_monotone(self):
        cdf = empirical_cdf([1, 2, 3, 4])
        assert cdf(0) == 0.0
        assert cdf(2) == pytest.approx(0.5)
        assert cdf(10) == 1.0

    def test_empirical_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_categorical_distribution_normalized(self):
        dist = categorical_distribution(["a", "a", "b", None])
        assert dist["a"] == pytest.approx(2 / 3)

    def test_normalized_histogram_sums_to_one(self):
        probabilities, edges = normalized_histogram([1, 2, 2, 3, 5], bins=4)
        assert probabilities.sum() == pytest.approx(1.0)
        assert len(edges) == 5

    def test_normalized_histogram_empty_rejected(self):
        with pytest.raises(ValueError):
            normalized_histogram([])


def _distance_matrix(points):
    points = np.asarray(points, dtype=float)
    return scipy.spatial.distance.squareform(scipy.spatial.distance.pdist(points))


class TestAgglomerativeClustering:
    def test_two_obvious_clusters(self):
        points = [[0.0], [0.1], [0.2], [5.0], [5.1]]
        clusters = fcluster_by_count(_distance_matrix(points), 2)
        assert sorted(map(len, clusters)) == [2, 3]
        assert [0, 1, 2] in clusters

    def test_distance_cut_isolates_far_item(self):
        points = [[0.0], [0.1], [10.0]]
        clusters = fcluster_by_distance(_distance_matrix(points), threshold=1.0)
        assert [2] in clusters

    def test_merge_heights_match_scipy_average_linkage(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(8, 2))
        distances = _distance_matrix(points)
        ours = AgglomerativeClustering(linkage="average").fit(distances)
        linkage = scipy.cluster.hierarchy.linkage(
            scipy.spatial.distance.squareform(distances, checks=False), method="average"
        )
        our_heights = sorted(height for _, _, height in ours.merges_)
        scipy_heights = sorted(linkage[:, 2])
        assert np.allclose(our_heights, scipy_heights, atol=1e-9)

    def test_flat_clusters_match_scipy_cut(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(10, 2))
        distances = _distance_matrix(points)
        threshold = 1.0
        ours = fcluster_by_distance(distances, threshold, linkage="average")
        labels = scipy.cluster.hierarchy.fcluster(
            scipy.cluster.hierarchy.linkage(
                scipy.spatial.distance.squareform(distances, checks=False), method="average"
            ),
            t=threshold, criterion="distance",
        )
        scipy_clusters = {}
        for index, label in enumerate(labels):
            scipy_clusters.setdefault(label, []).append(index)
        assert sorted(sorted(c) for c in scipy_clusters.values()) == ours

    def test_single_item(self):
        model = AgglomerativeClustering().fit(np.zeros((1, 1)))
        assert model.clusters_at_distance(0.5) == [[0]]

    def test_invalid_linkage_rejected(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(linkage="ward")

    def test_asymmetric_matrix_rejected(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering().fit(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_cluster_count_bounds(self):
        distances = _distance_matrix([[0.0], [1.0], [2.0]])
        model = AgglomerativeClustering().fit(distances)
        with pytest.raises(ValueError):
            model.clusters_by_count(0)
        with pytest.raises(ValueError):
            model.clusters_by_count(4)

    def test_requires_fit_before_cut(self):
        with pytest.raises(RuntimeError):
            AgglomerativeClustering().clusters_at_distance(1.0)

    def test_complete_and_single_linkage_run(self):
        distances = _distance_matrix([[0.0], [0.5], [4.0], [4.2]])
        for linkage in ("single", "complete"):
            clusters = fcluster_by_count(distances, 2, linkage=linkage)
            assert sorted(map(len, clusters)) == [2, 2]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-100, 100), min_size=1, max_size=40),
       st.lists(st.floats(-100, 100), min_size=1, max_size=40))
def test_wasserstein_symmetry_and_nonnegativity_property(a, b):
    """Property: W(a, b) == W(b, a) >= 0, and W(a, a) == 0."""
    forward = wasserstein_from_samples(a, b)
    backward = wasserstein_from_samples(b, a)
    assert forward == pytest.approx(backward, abs=1e-9)
    assert forward >= 0.0
    assert wasserstein_from_samples(a, a) == pytest.approx(0.0, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.integers(0, 1000))
def test_clustering_partition_property(n_items, seed):
    """Property: any dendrogram cut yields a partition of all the items."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n_items, 2))
    distances = _distance_matrix(points)
    clusters = fcluster_by_distance(distances, threshold=float(rng.uniform(0.1, 3.0)))
    flattened = sorted(index for cluster in clusters for index in cluster)
    assert flattened == list(range(n_items))
