"""Tests for the relational schema subsystem (graph, inference, synthesis)."""

import io
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets.relational import RetailConfig, generate_retail_like
from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig
from repro.pipelines.multitable import (
    FittedMultiTablePipeline,
    MultiTablePipelineConfig,
    MultiTableSchemaPipeline,
)
from repro.schema import (
    ForeignKey,
    InferenceConfig,
    MultiTableConfig,
    MultiTableSynthesizer,
    SchemaCycleError,
    SchemaGraph,
    SchemaGraphError,
    TableSchema,
    infer_primary_key,
    infer_schema,
)
from repro.serving import ServingConfig, ServingError, SynthesisService


def _fast_backbone(seed=0, engine="auto"):
    from repro.llm.sampler import SamplerConfig

    return GReaTConfig(
        fine_tune=FineTuneConfig(epochs=2, batches=2, model=ModelConfig(order=4),
                                 engine=engine),
        sampler=SamplerConfig(engine=engine),
        seed=seed,
    )


def _config(seed=0, engine="auto", **kwargs):
    return MultiTableConfig(backbone=_fast_backbone(seed, engine), seed=seed, **kwargs)


#: the ground-truth edges of the retail database
RETAIL_EDGES = {
    "items.order_id->orders.order_id",
    "orders.customer_id->customers.customer_id",
    "reviews.customer_id->customers.customer_id",
    "reviews.store_id->stores.store_id",
}


@pytest.fixture(scope="module")
def retail():
    return generate_retail_like(RetailConfig(n_customers=14, seed=5))


@pytest.fixture(scope="module")
def retail_graph(retail):
    return infer_schema(retail)


@pytest.fixture(scope="module")
def fitted_synth(retail, retail_graph):
    return MultiTableSynthesizer(_config()).fit(retail, retail_graph)


def _csv_bytes(table: Table) -> bytes:
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.column_names)
    for row in table.iter_rows():
        writer.writerow(["" if row[name] is None else row[name]
                         for name in table.column_names])
    return buffer.getvalue().encode("utf-8")


def _assert_referentially_intact(database, graph):
    for fk in graph.foreign_keys:
        parent_keys = set(database[fk.parent_table].column(fk.parent_column).values)
        child_values = set(database[fk.table].column(fk.column).values)
        assert child_values <= parent_keys, fk.edge_name


# ---------------------------------------------------------------------------
# graph
# ---------------------------------------------------------------------------

def _toy_graph():
    return SchemaGraph(
        tables=(
            TableSchema("a", ("a_id", "x"), ("str", "str"), primary_key="a_id"),
            TableSchema("b", ("b_id", "a_id", "y"), ("str", "str", "int"),
                        primary_key="b_id"),
            TableSchema("c", ("c_id", "b_id"), ("str", "str"), primary_key="c_id"),
        ),
        foreign_keys=(
            ForeignKey("b", "a_id", "a", "a_id"),
            ForeignKey("c", "b_id", "b", "b_id"),
        ),
    )


class TestSchemaGraph:
    def test_topological_order_parents_first(self, retail_graph):
        order = retail_graph.topological_order()
        position = {name: index for index, name in enumerate(order)}
        for fk in retail_graph.foreign_keys:
            assert position[fk.parent_table] < position[fk.table]

    def test_topological_order_is_deterministic(self, retail_graph):
        assert retail_graph.topological_order() == retail_graph.topological_order()
        reversed_graph = SchemaGraph(tables=tuple(reversed(retail_graph.tables)),
                                     foreign_keys=retail_graph.foreign_keys)
        assert reversed_graph.topological_order() == retail_graph.topological_order()

    def test_depth_levels_group_independent_tables(self, retail_graph):
        levels = retail_graph.depth_levels()
        assert [sorted(level) for level in levels] == [
            ["customers", "stores"], ["orders", "reviews"], ["items"]]

    def test_cycle_detection(self):
        graph = SchemaGraph(
            tables=(
                TableSchema("a", ("a_id", "b_id"), ("str", "str"), primary_key="a_id"),
                TableSchema("b", ("b_id", "a_id"), ("str", "str"), primary_key="b_id"),
            ),
            foreign_keys=(ForeignKey("a", "b_id", "b", "b_id"),
                          ForeignKey("b", "a_id", "a", "a_id")),
        )
        with pytest.raises(SchemaCycleError):
            graph.topological_order()

    def test_self_reference_rejected(self):
        with pytest.raises(SchemaGraphError):
            SchemaGraph(
                tables=(TableSchema("a", ("a_id", "boss"), ("str", "str"),
                                    primary_key="a_id"),),
                foreign_keys=(ForeignKey("a", "boss", "a", "a_id"),),
            )

    def test_fk_reusing_primary_key_column_rejected(self):
        """A 1:1 extension key (FK column == the table's own PK) would be
        silently overwritten by surrogate keys at sampling time."""
        with pytest.raises(SchemaGraphError, match="reuses the primary key"):
            SchemaGraph(
                tables=(
                    TableSchema("parent", ("pid", "x"), ("str", "str"),
                                primary_key="pid"),
                    TableSchema("child", ("pid", "size"), ("str", "int"),
                                primary_key="pid"),
                ),
                foreign_keys=(ForeignKey("child", "pid", "parent", "pid"),),
            )

    def test_two_fks_on_one_column_rejected(self):
        with pytest.raises(SchemaGraphError, match="more than one foreign key"):
            SchemaGraph(
                tables=(
                    TableSchema("a", ("key", "x"), ("str", "str"), primary_key="key"),
                    TableSchema("b", ("key", "y"), ("str", "str"), primary_key="key"),
                    TableSchema("c", ("c_id", "key"), ("str", "str"),
                                primary_key="c_id"),
                ),
                foreign_keys=(ForeignKey("c", "key", "a", "key"),
                              ForeignKey("c", "key", "b", "key")),
            )

    def test_fk_must_reference_primary_key(self):
        with pytest.raises(SchemaGraphError):
            SchemaGraph(
                tables=(
                    TableSchema("a", ("a_id", "x"), ("str", "str"), primary_key="a_id"),
                    TableSchema("b", ("b_id", "x"), ("str", "str"), primary_key="b_id"),
                ),
                foreign_keys=(ForeignKey("b", "x", "a", "x"),),
            )

    def test_key_and_feature_columns(self):
        graph = _toy_graph()
        assert graph.key_columns("b") == ["b_id", "a_id"]
        assert graph.feature_columns("b") == ["y"]
        assert graph.roots() == ["a"]

    def test_json_round_trip(self, retail_graph):
        assert SchemaGraph.from_json(retail_graph.to_json()) == retail_graph
        payload = json.loads(retail_graph.to_json())  # plain JSON, no envelope
        assert {t["name"] for t in payload["tables"]} == set(retail_graph.table_names)

    def test_validate_catches_missing_table(self, retail, retail_graph):
        partial = {k: v for k, v in retail.items() if k != "stores"}
        with pytest.raises(SchemaGraphError, match="missing table"):
            retail_graph.validate_tables(partial)

    def test_validate_catches_duplicate_primary_key(self, retail, retail_graph):
        broken = dict(retail)
        customers = retail["customers"]
        keys = customers.column("customer_id").values
        keys[0] = keys[1]
        broken["customers"] = customers.with_column("customer_id", keys)
        with pytest.raises(SchemaGraphError, match="not unique"):
            retail_graph.validate_tables(broken)

    def test_validate_catches_dangling_foreign_key(self, retail, retail_graph):
        broken = dict(retail)
        orders = retail["orders"]
        parents = orders.column("customer_id").values
        parents[0] = "c_nonexistent"
        broken["orders"] = orders.with_column("customer_id", parents)
        with pytest.raises(SchemaGraphError, match="dangling"):
            retail_graph.validate_tables(broken)


# ---------------------------------------------------------------------------
# inference
# ---------------------------------------------------------------------------

class TestInference:
    def test_recovers_retail_primary_keys(self, retail_graph):
        assert {t.name: t.primary_key for t in retail_graph.tables} == {
            "customers": "customer_id", "stores": "store_id", "orders": "order_id",
            "items": "item_id", "reviews": "review_id"}

    def test_recovers_retail_foreign_keys(self, retail_graph):
        assert {fk.edge_name for fk in retail_graph.foreign_keys} == RETAIL_EDGES

    def test_primary_key_prefers_id_names(self):
        table = Table({"label": ["a", "b", "c"], "thing_id": ["x", "y", "z"]})
        assert infer_primary_key(table) == "thing_id"

    def test_primary_key_rejects_missing_and_duplicates(self):
        assert infer_primary_key(Table({"id": ["a", "b", None]})) is None
        assert infer_primary_key(Table({"id": ["a", "a", "b"]})) is None

    def test_low_cardinality_flag_is_not_a_foreign_key(self):
        parent = Table({"id": list(range(10)), "x": ["v"] * 10})
        child = Table({"child_id": list(range(30)),
                       "flag": [i % 2 for i in range(30)],
                       "y": ["w"] * 30})
        graph = infer_schema({"parent": parent, "child": child})
        assert graph.foreign_keys == ()

    def test_name_hint_overrides_key_ratio_guard(self):
        parent = Table({"user_id": list(range(10)), "x": ["v"] * 10})
        child = Table({"row_id": list(range(6)), "user_id": [0, 1, 0, 1, 2, 0]})
        graph = infer_schema({"users": parent, "events": child})
        assert [fk.edge_name for fk in graph.foreign_keys] == \
            ["events.user_id->users.user_id"]

    def test_partial_coverage_respects_threshold(self):
        parent = Table({"user_id": ["u0", "u1", "u2"], "x": ["v"] * 3})
        child = Table({"row_id": ["r0", "r1"], "user_id": ["u0", "stray"]})
        tables = {"users": parent, "events": child}
        assert infer_schema(tables).foreign_keys == ()
        lenient = infer_schema(tables, InferenceConfig(min_coverage=0.5))
        assert [fk.edge_name for fk in lenient.foreign_keys] == \
            ["events.user_id->users.user_id"]
        assert lenient.foreign_keys[0].coverage == 0.5

    def test_cyclic_inference_raises(self):
        a = Table({"a_id": ["x1", "x2"], "b_id": ["y1", "y2"]})
        b = Table({"b_id": ["y1", "y2"], "a_id": ["x1", "x2"]})
        with pytest.raises(SchemaCycleError):
            infer_schema({"a": a, "b": b})

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_schema_recovered_from_synthetic_database(self, fitted_synth,
                                                      retail_graph, seed):
        """The round-trip property: a schema inferred from tables *sampled by*
        the multi-table synthesizer recovers the original PK/FK edges."""
        database = fitted_synth.sample_database(seed=seed)
        inferred = infer_schema(database)
        assert {t.name: t.primary_key for t in inferred.tables} == \
            {t.name: t.primary_key for t in retail_graph.tables}
        assert {fk.edge_name for fk in inferred.foreign_keys} >= RETAIL_EDGES


# ---------------------------------------------------------------------------
# multi-table synthesis
# ---------------------------------------------------------------------------

class TestMultiTableSynthesizer:
    def test_database_shape_and_integrity(self, fitted_synth, retail, retail_graph):
        database = fitted_synth.sample_database(seed=3)
        assert set(database) == set(retail)
        for name, table in database.items():
            assert table.column_names == retail[name].column_names
        assert database["customers"].num_rows == retail["customers"].num_rows
        _assert_referentially_intact(database, retail_graph)

    def test_surrogate_keys_are_unique(self, fitted_synth):
        database = fitted_synth.sample_database(seed=3)
        for name, key in [("customers", "customer_id"), ("orders", "order_id"),
                          ("items", "item_id"), ("reviews", "review_id")]:
            column = database[name].column(key)
            assert column.nunique() == len(column)

    def test_seed_determinism_and_sensitivity(self, fitted_synth):
        first = fitted_synth.sample_database(seed=4)
        again = fitted_synth.sample_database(seed=4)
        other = fitted_synth.sample_database(seed=5)
        assert all(first[name] == again[name] for name in first)
        assert any(first[name] != other[name] for name in first)

    def test_level_parallel_equals_serial(self, fitted_synth):
        from concurrent.futures import ThreadPoolExecutor

        serial = fitted_synth.sample_database(seed=6)
        with ThreadPoolExecutor(max_workers=4) as pool:
            parallel = fitted_synth.sample_database(seed=6, map_fn=pool.map)
        assert all(serial[name] == parallel[name] for name in serial)

    def test_root_counts_accept_int_and_dict(self, fitted_synth):
        database = fitted_synth.sample_database(5, seed=1)
        assert database["customers"].num_rows == 5
        assert database["stores"].num_rows == 5
        mixed = fitted_synth.sample_database({"customers": 3}, seed=1)
        assert mixed["customers"].num_rows == 3
        assert mixed["stores"].num_rows == 4  # training size

    def test_fixed_children_per_parent(self, retail, retail_graph):
        synth = MultiTableSynthesizer(_config(children_per_parent=2))
        synth.fit(retail, retail_graph)
        database = synth.sample_database(seed=2)
        assert database["orders"].num_rows == 2 * database["customers"].num_rows
        assert database["items"].num_rows == 2 * database["orders"].num_rows

    def test_zero_children_parents_in_distribution(self, fitted_synth, retail):
        """Customers without orders exist in the training data; the learned
        children-per-parent distribution must include those zeros."""
        with_orders = set(retail["orders"].column("customer_id").unique())
        all_customers = set(retail["customers"].column("customer_id").unique())
        assert with_orders < all_customers  # the dataset has childless parents
        counts = fitted_synth._edges["orders"]._children_per_parent_counts
        assert 0 in counts and len(counts) == len(all_customers)

    def test_secondary_foreign_key_draws_from_sampled_parent(self, fitted_synth):
        database = fitted_synth.sample_database(seed=7)
        stores = set(database["stores"].column("store_id").values)
        assert set(database["reviews"].column("store_id").values) <= stores

    def test_requires_fit_before_sampling(self):
        with pytest.raises(RuntimeError):
            MultiTableSynthesizer(_config()).sample_database(3)

    def test_fit_validates_against_graph(self, retail, retail_graph):
        broken = dict(retail)
        broken["orders"] = retail["orders"].drop("channel")
        with pytest.raises(SchemaGraphError):
            MultiTableSynthesizer(_config()).fit(broken, retail_graph)

    def test_engines_produce_identical_databases(self, retail, retail_graph):
        databases = {}
        for engine in ("object", "compiled"):
            synth = MultiTableSynthesizer(_config(engine=engine)).fit(retail, retail_graph)
            databases[engine] = synth.sample_database(seed=9)
        assert all(databases["object"][name] == databases["compiled"][name]
                   for name in databases["object"])


# ---------------------------------------------------------------------------
# acceptance: 3-level fit -> save -> load -> sample, byte identity, both engines
# ---------------------------------------------------------------------------

class TestPersistenceAcceptance:
    @pytest.mark.parametrize("engine", ["object", "compiled"])
    def test_fit_save_load_sample_byte_identical(self, retail, retail_graph,
                                                 tmp_path, engine):
        pipeline = MultiTableSchemaPipeline(MultiTablePipelineConfig(
            seed=0, generation_engine=engine, training_engine=engine))
        fitted = pipeline.fit(retail, retail_graph)
        expected = fitted.sample_database(seed=11)
        digest = fitted.save(tmp_path / "bundle")
        loaded = FittedMultiTablePipeline.load(tmp_path / "bundle")
        result = loaded.sample_database(seed=11)
        assert set(result) == set(expected)
        for name in expected:
            assert _csv_bytes(result[name]) == _csv_bytes(expected[name])
        _assert_referentially_intact(result, loaded.graph)
        assert loaded.graph == retail_graph
        assert loaded.config == fitted.config
        assert len(digest) == 64

    def test_compressed_bundle_round_trips(self, fitted_synth, tmp_path):
        from repro.store.bundle import load_multitable, read_manifest

        fitted_synth.save(tmp_path / "plain", compress=False)
        fitted_synth.save(tmp_path / "small", compress=True)
        assert read_manifest(tmp_path / "plain")["compress"] is False
        assert read_manifest(tmp_path / "small")["compress"] is True
        expected = fitted_synth.sample_database(seed=2)
        for path in (tmp_path / "plain", tmp_path / "small"):
            result = load_multitable(path).sample_database(seed=2)
            assert all(result[name] == expected[name] for name in expected)

    def test_load_bundle_dispatches_multitable(self, fitted_synth, tmp_path):
        from repro.store.bundle import load_bundle

        fitted_synth.save(tmp_path / "bundle")
        loaded = load_bundle(tmp_path / "bundle")
        assert isinstance(loaded, MultiTableSynthesizer)


# ---------------------------------------------------------------------------
# pipeline + serving
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def multitable_bundle(retail, retail_graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("bundles") / "multitable"
    fitted = MultiTableSchemaPipeline(MultiTablePipelineConfig(seed=0)).fit(
        retail, retail_graph)
    fitted.save(path)
    return path


class TestServingDatabases:
    def test_shard_counts_are_bit_identical(self, multitable_bundle):
        reference = SynthesisService.from_bundle(
            multitable_bundle, ServingConfig(shards=1, cache_bytes=0)
        ).sample_database(seed=3)
        for shards in (2, 4):
            service = SynthesisService.from_bundle(
                multitable_bundle, ServingConfig(shards=shards, cache_bytes=0))
            database = service.sample_database(seed=3)
            assert all(database[name] == reference[name] for name in reference)

    def test_database_requests_cache_and_count(self, multitable_bundle):
        service = SynthesisService.from_bundle(multitable_bundle,
                                               ServingConfig(cache_bytes=1 << 20))
        first = service.sample_database(seed=1)
        second = service.sample_database(seed=1)
        assert all(first[name] == second[name] for name in first)
        stats = service.stats()
        assert stats["database_requests"] == 2
        assert stats["cache_hits"] == 1
        assert stats["cache_bytes_used"] > 0

    def test_flat_requests_rejected_on_multitable_bundle(self, multitable_bundle):
        service = SynthesisService.from_bundle(multitable_bundle)
        with pytest.raises(ServingError):
            service.sample_table(4)
        with pytest.raises(ServingError):
            service.sample_rows(3, {"region": "north"})

    def test_database_requests_rejected_on_flat_pipeline(self, tiny_digix):
        from repro.pipelines.greater import GReaTERPipeline
        from repro.pipelines.config import PipelineConfig

        trial = tiny_digix.trials()[0]
        fitted = GReaTERPipeline(PipelineConfig(
            seed=0, drop_columns=("task_id",))).fit(trial.ads, trial.feeds)
        with pytest.raises(ServingError):
            SynthesisService(fitted).sample_database()


class TestMultiTablePipeline:
    def test_run_equals_fit_sample(self, retail, retail_graph):
        pipeline = MultiTableSchemaPipeline(MultiTablePipelineConfig(seed=1))
        via_run = pipeline.run(retail, retail_graph)
        via_split = pipeline.fit(retail, retail_graph).sample_database()
        assert all(via_run[name] == via_split[name] for name in via_run)

    def test_config_defaults_feed_sampling(self, retail, retail_graph):
        pipeline = MultiTableSchemaPipeline(MultiTablePipelineConfig(
            seed=1, n_root_rows=3))
        database = pipeline.fit(retail, retail_graph).sample_database()
        assert database["customers"].num_rows == 3


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCliSchemaCommands:
    @pytest.fixture()
    def data_dir(self, retail, tmp_path):
        from repro.frame.io import write_csv

        directory = tmp_path / "data"
        directory.mkdir()
        for name, table in retail.items():
            write_csv(table, directory / "{}.csv".format(name))
        return directory

    def test_schema_infer_show_run_round_trip(self, data_dir, tmp_path, capsys):
        from repro.cli import main

        schema_path = tmp_path / "schema.json"
        assert main(["schema", "infer", "--data-dir", str(data_dir),
                     "--out", str(schema_path), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["table"] for row in rows} == {
            "customers", "stores", "orders", "items", "reviews"}
        graph = SchemaGraph.from_json(schema_path.read_text())
        assert {fk.edge_name for fk in graph.foreign_keys} == RETAIL_EDGES

        assert main(["schema", "show", "--schema", str(schema_path), "--json"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert [row["order"] for row in shown] == list(range(5))

        bundle = tmp_path / "bundle"
        out_dir = tmp_path / "synthetic"
        assert main(["run", "--pipeline", "multitable", "--data-dir", str(data_dir),
                     "--schema", str(schema_path), "--bundle", str(bundle),
                     "--n", "4", "--seed", "3", "--out-dir", str(out_dir),
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["digest"]
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "customers.csv", "items.csv", "orders.csv", "reviews.csv", "stores.csv"]

        assert main(["schema", "show", "--bundle", str(bundle), "--json"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert {row["table"] for row in shown} == {
            "customers", "stores", "orders", "items", "reviews"}

    def test_schema_infer_requires_data_dir(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["schema", "infer"])

    def test_serve_bench_rejects_multitable_bundle(self, multitable_bundle):
        from repro.cli import main

        with pytest.raises(SystemExit, match="multitable bundle"):
            main(["serve-bench", "--bundle", str(multitable_bundle),
                  "--requests", "1", "--shards", "1"])

    def test_derive_seed_shared_between_layers(self):
        from repro.llm.engine import derive_seed as engine_derive
        from repro.schema.multitable import derive_seed as schema_derive
        from repro.serving import derive_seed as serving_derive

        assert engine_derive is schema_derive is serving_derive

    def test_list_includes_new_commands(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "schema" in out and "run" in out
