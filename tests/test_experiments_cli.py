"""Tests for the experiment harness, the figure entry points and the CLI."""

import pytest

from repro.cli import EXPERIMENTS, _print_rows, build_parser, main
from repro.evaluation.fidelity import FidelityEvaluator
from repro.experiments.figures import (
    aggregate_reports,
    dataset_statistics,
    fig2_token_ambiguity,
    fig4_flattening_bias,
    fig5_correlation_heatmap,
    fig10_ablation,
)
from repro.experiments.harness import (
    ExperimentConfig,
    default_pipeline_config,
    experiment_scale,
    run_pipeline_on_trial,
    run_trials,
)
from repro.pipelines.greater import GReaTERPipeline
from repro.pipelines.flatten_baseline import DirectFlattenPipeline


TINY = ExperimentConfig(n_trials=1, n_users_per_task=6,
                        ads_rows_per_user=(2, 3), feeds_rows_per_user=(2, 3), seed=11)


class TestHarness:
    def test_experiment_scale_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "3")
        assert experiment_scale() == 3
        monkeypatch.setenv("REPRO_BENCH_SCALE", "junk")
        assert experiment_scale() == 1

    def test_from_scale_grows_sizes(self):
        small = ExperimentConfig.from_scale(1)
        large = ExperimentConfig.from_scale(3)
        assert large.n_users_per_task > small.n_users_per_task
        assert large.n_trials >= small.n_trials

    def test_dataset_respects_trial_count(self):
        dataset = TINY.dataset()
        assert len(dataset.task_ids()) == 1

    def test_run_pipeline_on_trial_returns_report(self, tiny_digix):
        trial = tiny_digix.trials()[0]
        pipeline = DirectFlattenPipeline(default_pipeline_config(seed=0))
        report = run_pipeline_on_trial(pipeline, trial, label="flatten")
        assert report.label == "flatten"
        assert len(report) > 0

    def test_run_trials_keys_and_max_trials(self, tiny_digix):
        pipelines = {"flatten": DirectFlattenPipeline(default_pipeline_config(seed=0))}
        results = run_trials(pipelines, tiny_digix, max_trials=1,
                             evaluator=FidelityEvaluator())
        assert len(results) == 1
        assert set(results[0].reports) == {"flatten"}

    def test_aggregate_reports_shape(self, tiny_digix):
        pipelines = {
            "flatten": DirectFlattenPipeline(default_pipeline_config(seed=0)),
        }
        results = run_trials(pipelines, tiny_digix, max_trials=1)
        rows = aggregate_reports(results)
        assert rows[0]["configuration"] == "flatten"
        assert 0.0 <= rows[0]["mean_p_value"] <= 1.0
        assert rows[0]["trials"] == 1

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_reports([])


class TestFigureFunctions:
    def test_fig2_enhancement_removes_shared_tokens(self):
        outcome = fig2_token_ambiguity()
        before, after = outcome["rows"]
        assert before["shared_tokens"] > 0
        assert after["shared_tokens"] == 0

    def test_fig4_connecting_shrinks_the_table(self):
        outcome = fig4_flattening_bias()
        flattened_row, connected_row = outcome["rows"]
        assert connected_row["rows"] <= flattened_row["rows"]
        assert flattened_row["max_subject_share"] >= connected_row["max_subject_share"]

    def test_fig5_pseudo_id_columns_inflate_associations(self):
        outcome = fig5_correlation_heatmap(config=TINY)
        before, after = outcome["rows"]
        assert set(outcome["removed"]) == {"e_et", "idocid", "i_entities"}
        assert before["mean_association_of_pseudo_id_columns"] >= after["mean_offdiag_association"]

    def test_dataset_statistics_rows(self):
        outcome = dataset_statistics(config=TINY)
        row = outcome["rows"][0]
        assert row["n_task_subgroups"] == 1
        assert 0.0 <= row["click_through_rate"] < 0.1

    @pytest.mark.slow
    def test_fig10_ablation_produces_counts(self):
        outcome = fig10_ablation(config=TINY)
        assert len(outcome["rows"]) == 3
        for row in outcome["rows"]:
            assert row["baseline"] == "direct_flatten"


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_fig2_runs_and_prints_table(self, capsys):
        assert main(["fig2"]) == 0
        output = capsys.readouterr().out
        assert "shared_tokens" in output

    def test_fig4_json_output(self, capsys):
        assert main(["fig4", "--json"]) == 0
        output = capsys.readouterr().out
        assert output.strip().startswith("[")

    def test_dataset_with_size_flags(self, capsys):
        assert main(["dataset", "--trials", "1", "--users-per-task", "6", "--seed", "3"]) == 0
        assert "click_through_rate" in capsys.readouterr().out


class TestPrintRows:
    def test_heterogeneous_rows_keep_all_columns(self, capsys):
        """Columns appearing only in later rows must still be printed."""
        _print_rows([
            {"a": 1, "b": 2},
            {"b": 3, "c": 4},
            {"d": 5},
        ])
        output = capsys.readouterr().out
        header = output.splitlines()[0]
        assert header.split() == ["a", "b", "c", "d"]
        # the late-appearing column's value is rendered, not dropped
        assert "5" in output

    def test_union_keys_keep_first_seen_order(self, capsys):
        _print_rows([{"z": 1}, {"a": 2, "z": 3}])
        header = capsys.readouterr().out.splitlines()[0]
        assert header.split() == ["z", "a"]

    def test_empty_rows(self, capsys):
        _print_rows([])
        assert "(no rows)" in capsys.readouterr().out
