"""Unit tests for repro.stats.correlation."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, strategies as st

from repro.frame.ops import crosstab
from repro.frame.table import Table
from repro.stats.correlation import (
    association_matrix,
    column_association,
    cramers_v,
    pairwise_matrix,
    pearson_correlation,
)


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3, 4], [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = 0.5 * x + rng.normal(size=50)
        expected = np.corrcoef(x, y)[0, 1]
        assert pearson_correlation(x, y) == pytest.approx(expected, abs=1e-9)

    def test_constant_sequence_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([], [])

    def test_nan_values_ignored(self):
        assert pearson_correlation([1, 2, float("nan"), 4], [2, 4, 5, 8]) == pytest.approx(1.0)


class TestCramersV:
    def test_independent_table_near_zero(self):
        contingency = np.array([[25, 25], [25, 25]], dtype=float)
        assert cramers_v(contingency) == pytest.approx(0.0, abs=1e-9)

    def test_perfectly_associated_table(self):
        contingency = np.array([[50, 0], [0, 50]], dtype=float)
        assert cramers_v(contingency, bias_correction=False) == pytest.approx(1.0)

    def test_bias_correction_shrinks_small_samples(self):
        contingency = np.array([[3, 1], [1, 3]], dtype=float)
        assert cramers_v(contingency, bias_correction=True) <= cramers_v(contingency, bias_correction=False)

    def test_value_in_unit_interval(self):
        rng = np.random.default_rng(1)
        contingency = rng.integers(0, 30, size=(4, 5)).astype(float)
        value = cramers_v(contingency)
        assert 0.0 <= value <= 1.0

    def test_uncorrected_matches_scipy_association(self):
        rng = np.random.default_rng(2)
        contingency = rng.integers(1, 30, size=(3, 4))
        expected = scipy.stats.contingency.association(contingency, method="cramer", correction=False)
        assert cramers_v(contingency.astype(float), bias_correction=False) == pytest.approx(expected, abs=1e-9)

    def test_degenerate_single_row(self):
        assert cramers_v(np.array([[5, 5]])) == 0.0

    def test_empty_table(self):
        assert cramers_v(np.zeros((2, 2))) == 0.0

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            cramers_v(np.zeros(4))


class TestColumnAssociation:
    def test_categorical_pair_uses_cramers_v(self):
        table = Table({"a": ["x", "x", "y", "y"] * 10, "b": ["p", "p", "q", "q"] * 10})
        value = column_association(table, "a", "b")
        contingency, _, _ = crosstab(table, "a", "b")
        assert value == pytest.approx(cramers_v(contingency))

    def test_numeric_pair_uses_pearson(self):
        values = list(np.linspace(0, 10, 50))
        table = Table({"a": values, "b": [v * 2 + 1 for v in values]})
        assert column_association(table, "a", "b") == pytest.approx(1.0, abs=1e-9)

    def test_symmetric(self):
        table = Table({"a": [1, 1, 2, 2, 3], "b": ["x", "x", "y", "y", "x"]})
        assert column_association(table, "a", "b") == pytest.approx(column_association(table, "b", "a"))


class TestAssociationMatrix:
    def test_diagonal_is_one(self, small_table):
        matrix, names = association_matrix(small_table)
        assert np.allclose(np.diag(matrix), 1.0)
        assert names == small_table.column_names

    def test_matrix_is_symmetric(self, small_table):
        matrix, _ = association_matrix(small_table)
        assert np.allclose(matrix, matrix.T)

    def test_subset_of_columns(self, small_table):
        matrix, names = association_matrix(small_table, columns=["age", "city"])
        assert matrix.shape == (2, 2)
        assert names == ["age", "city"]

    def test_values_in_unit_interval(self, small_table):
        matrix, _ = association_matrix(small_table)
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0 + 1e-12)


class TestPairwiseMatrix:
    def test_custom_measure(self, small_table):
        matrix, names = pairwise_matrix(small_table, lambda t, a, b: 0.5, columns=["age", "city"])
        assert matrix[0, 1] == 0.5 and matrix[1, 0] == 0.5
        assert matrix[0, 0] == 1.0


@given(st.integers(2, 5), st.integers(2, 5), st.integers(0, 1000))
def test_cramers_v_bounded_property(rows, cols, seed):
    """Property: Cramer's V always lies in [0, 1] for any contingency table."""
    rng = np.random.default_rng(seed)
    contingency = rng.integers(0, 20, size=(rows, cols)).astype(float)
    value = cramers_v(contingency)
    assert 0.0 <= value <= 1.0 + 1e-12
