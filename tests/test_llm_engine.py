"""Equivalence and behaviour tests for the batched generation engine.

The object and compiled backbones must produce *identical* outputs for
identical seeds — bit-identical mass matrices in, one shared RNG protocol
out.  These tests pin that contract across temperatures, top-k values,
prompts, the validity-retry path, and the guided synthesizer stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.compiled import CompiledNGramModel
from repro.llm.engine import BatchGenerationEngine, ObjectBackbone, resolve_engine_kind
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig, NGramLanguageModel
from repro.llm.sampler import SamplerConfig, TemperatureSampler
from repro.llm.tokenizer import WordTokenizer

CORPUS = [
    "Name: Grace, Lunch: Rice, Dinner: Steak",
    "Name: Yin, Lunch: Spaghetti, Dinner: Chicken",
    "Name: Anson, Lunch: Fried Rice, Dinner: Curry",
    "Name: Grace, Lunch: Rice, Dinner: Steak",
    "Name: Yin, Lunch: Spaghetti, Dinner: Steak",
    "Name: Maya, Lunch: Noodles, Dinner: Curry",
]


@pytest.fixture(scope="module")
def trained_model():
    tokenizer = WordTokenizer().fit(CORPUS)
    model = NGramLanguageModel(tokenizer, ModelConfig(order=4, smoothing=0.01))
    model.fit(CORPUS)
    return model


def _engines(model, **config_kwargs):
    object_engine = BatchGenerationEngine(
        model, SamplerConfig(engine="object", **config_kwargs))
    compiled_engine = BatchGenerationEngine(
        model, SamplerConfig(engine="compiled", **config_kwargs))
    return object_engine, compiled_engine


class TestBackboneMasses:
    def test_dense_masses_bitwise_identical(self, trained_model):
        compiled = CompiledNGramModel(trained_model)
        legacy = ObjectBackbone(trained_model)
        rng = np.random.default_rng(0)
        width = trained_model.config.order - 1
        vocab_size = len(trained_model.tokenizer.vocabulary)
        contexts = rng.integers(0, vocab_size, size=(40, width)).astype(np.int64)
        lengths = rng.integers(0, width + 1, size=40).astype(np.int64)
        assert np.array_equal(legacy.dense_masses(contexts, lengths),
                              compiled.dense_masses(contexts, lengths))

    def test_token_masses_bitwise_identical(self, trained_model):
        compiled = CompiledNGramModel(trained_model)
        legacy = ObjectBackbone(trained_model)
        rng = np.random.default_rng(1)
        width = trained_model.config.order - 1
        vocab_size = len(trained_model.tokenizer.vocabulary)
        contexts = rng.integers(0, vocab_size, size=(25, width)).astype(np.int64)
        lengths = rng.integers(0, width + 1, size=25).astype(np.int64)
        for token_id in range(vocab_size):
            assert np.array_equal(legacy.token_masses(contexts, lengths, token_id),
                                  compiled.token_masses(contexts, lengths, token_id))

    def test_dense_masses_match_model_distribution(self, trained_model):
        """Masses renormalise to the model's public next-token distribution."""
        compiled = CompiledNGramModel(trained_model)
        vocabulary = trained_model.tokenizer.vocabulary
        context = [vocabulary.encode_token("Lunch"), vocabulary.encode_token(":")]
        width = trained_model.config.order - 1
        contexts = np.zeros((1, width), dtype=np.int64)
        contexts[0, width - len(context):] = context
        lengths = np.array([len(context)], dtype=np.int64)
        masses = compiled.dense_masses(contexts, lengths)[0]
        expected = trained_model.next_token_distribution(context)
        normalised = masses / masses.sum()
        for token_id, probability in expected.items():
            assert normalised[token_id] == pytest.approx(probability, rel=1e-9)


class TestFreeGenerationEquivalence:
    @pytest.mark.parametrize("temperature", [0.0, 0.4, 1.0, 1.7])
    @pytest.mark.parametrize("top_k", [None, 3, 12])
    def test_identical_sentences(self, trained_model, temperature, top_k):
        object_engine, compiled_engine = _engines(
            trained_model, temperature=temperature, top_k=top_k, max_tokens=48)
        assert object_engine.generate_sentences(16, seed=5) == \
            compiled_engine.generate_sentences(16, seed=5)

    def test_identical_with_prompts(self, trained_model):
        tokenizer = trained_model.tokenizer
        prompt = tokenizer.encode("Name :", add_bos=False, add_eos=False)
        prompts = [prompt] * 10
        object_engine, compiled_engine = _engines(trained_model, max_tokens=40)
        object_out = object_engine.generate_sentences(10, prompts=prompts, seed=9)
        compiled_out = compiled_engine.generate_sentences(10, prompts=prompts, seed=9)
        assert object_out == compiled_out
        assert all(sentence.startswith("Name") for sentence in object_out)

    def test_identical_validity_retry(self, trained_model):
        object_engine, compiled_engine = _engines(trained_model, max_retries=3)
        predicate = lambda sentence: "Lunch" in sentence  # noqa: E731
        object_out = object_engine.generate_valid(12, predicate, seed=3)
        compiled_out = compiled_engine.generate_valid(12, predicate, seed=3)
        assert object_out == compiled_out
        assert all(v is None or "Lunch" in v for v in object_out)

    def test_chunked_batches_match_single_batch(self, trained_model):
        """Lane chunking must not change the draw sequence."""
        wide = BatchGenerationEngine(
            trained_model, SamplerConfig(engine="compiled", batch_lanes=512))
        narrow = BatchGenerationEngine(
            trained_model, SamplerConfig(engine="object", batch_lanes=512))
        assert wide.generate_sentences(30, seed=2) == narrow.generate_sentences(30, seed=2)

    def test_max_tokens_bounds_sequences(self, trained_model):
        engine = BatchGenerationEngine(
            trained_model, SamplerConfig(engine="compiled", max_tokens=5, top_k=None))
        for ids in engine.generate_ids_batch(8, seed=0):
            assert len(ids) <= 5

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), temperature=st.floats(0.05, 2.5),
           top_k=st.one_of(st.none(), st.integers(1, 20)))
    def test_equivalence_property(self, trained_model, seed, temperature, top_k):
        object_engine, compiled_engine = _engines(
            trained_model, temperature=temperature, top_k=top_k, max_tokens=32)
        assert object_engine.generate_sentences(6, seed=seed) == \
            compiled_engine.generate_sentences(6, seed=seed)


def _great_config(engine, strategy="guided", temperature=0.85, seed=0):
    return GReaTConfig(
        fine_tune=FineTuneConfig(epochs=2, batches=2, model=ModelConfig(order=4)),
        sampler=SamplerConfig(temperature=temperature, top_k=12, seed=seed, engine=engine),
        sampling_strategy=strategy,
        seed=seed,
    )


@pytest.fixture(scope="module")
def meals_table():
    return Table({
        "Name": ["Grace", "Yin", "Anson", "Maya", "Leo", "Iris"],
        "Lunch": ["Rice", "Spaghetti", "Fried Rice", "Noodles", "Spaghetti", "Rice"],
        "Dinner": ["Steak", "Chicken", "Curry", "Steak", "Chicken", "Curry"],
        "Rating": [5, 4, 3, 5, 4, 3],
    })


class TestSynthesizerEquivalence:
    @pytest.mark.parametrize("strategy", ["guided", "free"])
    @pytest.mark.parametrize("temperature", [0.3, 0.85, 1.5])
    def test_identical_tables(self, meals_table, strategy, temperature):
        object_synth = GReaTSynthesizer(
            _great_config("object", strategy, temperature)).fit(meals_table)
        compiled_synth = GReaTSynthesizer(
            _great_config("compiled", strategy, temperature)).fit(meals_table)
        assert object_synth.sample(25, seed=4) == compiled_synth.sample(25, seed=4)

    def test_identical_conditional_tables(self, meals_table):
        prompts = [{"Name": "Grace"}, {"Name": "Yin"}, {"Name": "Maya"}] * 4
        object_synth = GReaTSynthesizer(_great_config("object")).fit(meals_table)
        compiled_synth = GReaTSynthesizer(_great_config("compiled")).fit(meals_table)
        object_out = object_synth.sample_conditional(prompts, seed=6)
        compiled_out = compiled_synth.sample_conditional(prompts, seed=6)
        assert object_out == compiled_out
        assert object_out.column("Name").values[:3] == ["Grace", "Yin", "Maya"]

    def test_negative_seeds_accepted(self, meals_table):
        """random.Random accepted any int seed; the numpy streams must too."""
        for strategy in ("guided", "free"):
            synth = GReaTSynthesizer(_great_config("compiled", strategy)).fit(meals_table)
            assert synth.sample(4, seed=-3) == synth.sample(4, seed=-3)

    def test_engine_shared_with_sampler(self, meals_table):
        """fit() must not freeze the compiled model twice."""
        synth = GReaTSynthesizer(_great_config("compiled")).fit(meals_table)
        assert synth.engine is synth._sampler.engine

    def test_batch_sampling_stays_on_training_support(self, meals_table):
        synth = GReaTSynthesizer(_great_config("compiled")).fit(meals_table)
        sample = synth.sample(40, seed=1)
        for name in meals_table.column_names:
            assert set(sample.column(name).unique()) <= set(meals_table.column(name).unique())


class TestEngineSelection:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_engine_kind("gpu")

    def test_config_rejects_unknown(self):
        with pytest.raises(ValueError):
            SamplerConfig(engine="gpu")

    def test_env_var_controls_auto(self, trained_model, monkeypatch):
        monkeypatch.setenv("REPRO_GENERATION_ENGINE", "object")
        assert resolve_engine_kind("auto") == "object"
        engine = BatchGenerationEngine(trained_model, SamplerConfig(engine="auto"))
        assert engine.kind == "object"
        monkeypatch.delenv("REPRO_GENERATION_ENGINE")
        assert resolve_engine_kind(None) == "compiled"

    def test_explicit_kind_overrides_config(self, trained_model):
        engine = BatchGenerationEngine(
            trained_model, SamplerConfig(engine="object"), kind="compiled")
        assert engine.kind == "compiled"

    def test_untrained_model_rejected(self):
        model = NGramLanguageModel(WordTokenizer())
        with pytest.raises(ValueError):
            BatchGenerationEngine(model, SamplerConfig())
        with pytest.raises(ValueError):
            CompiledNGramModel(model)


class TestSamplerDelegation:
    def test_sample_batch_uses_engine(self, trained_model):
        sampler = TemperatureSampler(trained_model, SamplerConfig(seed=1, engine="compiled"))
        sentences = sampler.sample_batch(7)
        assert len(sentences) == 7
        assert sampler.engine.kind == "compiled"

    def test_sample_batch_reproducible_after_reseed(self, trained_model):
        sampler = TemperatureSampler(trained_model, SamplerConfig(seed=1))
        sampler.reseed(11)
        first = sampler.sample_batch(5)
        sampler.reseed(11)
        assert sampler.sample_batch(5) == first

    def test_sample_valid_none_when_impossible(self, trained_model):
        sampler = TemperatureSampler(trained_model, SamplerConfig(seed=1, max_retries=2))
        assert sampler.sample_valid(lambda s: False) is None
