"""Unit tests for repro.frame.table."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.frame.errors import (
    ColumnNotFoundError,
    DuplicateColumnError,
    LengthMismatchError,
    SchemaError,
)
from repro.frame.table import Table


class TestConstruction:
    def test_from_mapping(self):
        table = Table({"a": [1, 2], "b": ["x", "y"]})
        assert table.shape == (2, 2)
        assert table.column_names == ["a", "b"]

    def test_from_records_preserves_key_order(self):
        table = Table.from_records([{"b": 1, "a": 2}, {"b": 3, "a": 4}])
        assert table.column_names == ["b", "a"]

    def test_from_records_fills_missing_keys(self):
        table = Table.from_records([{"a": 1}, {"a": 2, "b": 5}])
        assert table.column("b").values == [None, 5]

    def test_from_records_explicit_columns(self):
        table = Table.from_records([{"a": 1, "b": 2}], columns=["b", "a"])
        assert table.column_names == ["b", "a"]

    def test_empty_table(self):
        table = Table()
        assert table.shape == (0, 0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(LengthMismatchError):
            Table({"a": [1, 2], "b": [1]})

    def test_duplicate_columns_rejected(self):
        from repro.frame.column import Column
        with pytest.raises(DuplicateColumnError):
            Table([Column("a", [1]), Column("a", [2])])

    def test_copy_is_independent(self, small_table):
        copied = small_table.copy()
        assert copied == small_table
        assert copied is not small_table


class TestAccess:
    def test_column_access_by_name(self, small_table):
        assert small_table["age"].values == [25, 31, 25, 40]

    def test_missing_column_raises(self, small_table):
        with pytest.raises(ColumnNotFoundError):
            small_table.column("nope")

    def test_row_access(self, small_table):
        assert small_table.row(0) == {"name": "Grace", "age": 25, "score": 0.5, "city": "Austin"}

    def test_row_out_of_range(self, small_table):
        with pytest.raises(IndexError):
            small_table.row(10)

    def test_slice_returns_rows(self, small_table):
        head = small_table[:2]
        assert head.num_rows == 2
        assert head.column("name").values == ["Grace", "Yin"]

    def test_select_by_list(self, small_table):
        selected = small_table[["city", "name"]]
        assert selected.column_names == ["city", "name"]

    def test_invalid_key_type(self, small_table):
        with pytest.raises(TypeError):
            small_table[3]

    def test_contains(self, small_table):
        assert "age" in small_table
        assert "salary" not in small_table

    def test_to_records_round_trip(self, small_table):
        rebuilt = Table.from_records(small_table.to_records())
        assert rebuilt == small_table

    def test_dtypes(self, small_table):
        dtypes = small_table.dtypes()
        assert dtypes["age"] == "int"
        assert dtypes["score"] == "float"
        assert dtypes["name"] == "str"


class TestColumnManipulation:
    def test_drop_single(self, small_table):
        assert "age" not in small_table.drop("age").column_names

    def test_drop_missing_column_raises(self, small_table):
        with pytest.raises(ColumnNotFoundError):
            small_table.drop("missing")

    def test_rename(self, small_table):
        renamed = small_table.rename({"age": "years"})
        assert "years" in renamed.column_names
        assert renamed.column("years").values == small_table.column("age").values

    def test_rename_to_existing_name_rejected(self, small_table):
        with pytest.raises(DuplicateColumnError):
            small_table.rename({"age": "name"})

    def test_with_column_adds(self, small_table):
        extended = small_table.with_column("flag", [1, 0, 1, 0])
        assert extended.column("flag").values == [1, 0, 1, 0]

    def test_with_column_replaces(self, small_table):
        replaced = small_table.with_column("age", [1, 2, 3, 4])
        assert replaced.column("age").values == [1, 2, 3, 4]

    def test_with_column_length_checked(self, small_table):
        with pytest.raises(LengthMismatchError):
            small_table.with_column("flag", [1])

    def test_map_column(self, small_table):
        doubled = small_table.map_column("age", lambda v: v * 2)
        assert doubled.column("age").values == [50, 62, 50, 80]

    def test_reorder(self, small_table):
        reordered = small_table.reorder(["city", "score", "age", "name"])
        assert reordered.column_names == ["city", "score", "age", "name"]

    def test_reorder_requires_permutation(self, small_table):
        with pytest.raises(SchemaError):
            small_table.reorder(["city", "score"])


class TestRowManipulation:
    def test_take(self, small_table):
        taken = small_table.take([3, 0])
        assert taken.column("name").values == ["Maya", "Grace"]

    def test_filter(self, small_table):
        young = small_table.filter(lambda row: row["age"] < 30)
        assert young.num_rows == 2

    def test_where(self, small_table):
        assert small_table.where("city", "Austin").num_rows == 2

    def test_where_in(self, small_table):
        assert small_table.where_in("city", ["Austin", "Denver"]).num_rows == 3

    def test_sort_by(self, small_table):
        ordered = small_table.sort_by("age")
        assert ordered.column("age").values == [25, 25, 31, 40]

    def test_sort_by_reverse(self, small_table):
        ordered = small_table.sort_by("age", reverse=True)
        assert ordered.column("age").values[0] == 40

    def test_drop_duplicates_full_row(self):
        table = Table({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert table.drop_duplicates().num_rows == 2

    def test_drop_duplicates_subset(self):
        table = Table({"a": [1, 1, 2], "b": ["x", "z", "y"]})
        deduped = table.drop_duplicates(subset=["a"])
        assert deduped.num_rows == 2
        assert deduped.column("b").values == ["x", "y"]

    def test_sample_rows_with_replacement(self, small_table):
        sampled = small_table.sample_rows(10, rng=random.Random(0))
        assert sampled.num_rows == 10

    def test_sample_rows_without_replacement_limits(self, small_table):
        with pytest.raises(ValueError):
            small_table.sample_rows(10, rng=random.Random(0), replace=False)

    def test_sample_from_empty_table_raises(self):
        with pytest.raises(ValueError):
            Table({"a": []}).sample_rows(1)

    def test_shuffle_preserves_multiset(self, small_table):
        shuffled = small_table.shuffle(rng=random.Random(3))
        assert shuffled.equals_ignoring_order(small_table)


class TestGrouping:
    def test_group_by_returns_subtables(self, small_table):
        groups = small_table.group_by("city")
        assert set(groups) == {"Austin", "Boston", "Denver"}
        assert groups["Austin"].num_rows == 2

    def test_group_indices(self, small_table):
        indices = small_table.group_indices("city")
        assert indices["Austin"] == [0, 2]

    def test_unique_values(self, small_table):
        assert small_table.unique_values("age") == [25, 31, 40]


class TestEquality:
    def test_equality_is_order_sensitive(self, small_table):
        assert small_table != small_table.take([1, 0, 2, 3])

    def test_equals_ignoring_order(self, small_table):
        assert small_table.equals_ignoring_order(small_table.take([3, 2, 1, 0]))

    def test_equals_ignoring_order_detects_difference(self, small_table):
        other = small_table.with_column("age", [1, 2, 3, 4])
        assert not small_table.equals_ignoring_order(other)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
def test_drop_duplicates_idempotent_property(values):
    """Property: dropping duplicates twice is the same as dropping them once."""
    table = Table({"a": values})
    once = table.drop_duplicates()
    twice = once.drop_duplicates()
    assert once == twice
    assert once.num_rows == len(set(values))


@given(
    st.lists(st.tuples(st.integers(0, 3), st.sampled_from("xyz")), min_size=1, max_size=30),
)
def test_group_by_partitions_rows_property(pairs):
    """Property: group_by partitions the rows (sizes sum to the total)."""
    table = Table({"key": [p[0] for p in pairs], "val": [p[1] for p in pairs]})
    groups = table.group_by("key")
    assert sum(sub.num_rows for sub in groups.values()) == table.num_rows
