"""Unit tests for the LLM substrate (tokenizer, n-gram model, sampler, fine-tuner)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm.embeddings import CooccurrenceEmbedding
from repro.llm.finetune import FineTuneConfig, FineTuner
from repro.llm.ngram_model import ModelConfig, NGramLanguageModel
from repro.llm.sampler import SamplerConfig, TemperatureSampler
from repro.llm.tokenizer import SPECIAL_TOKENS, Vocabulary, WordTokenizer

CORPUS = [
    "Name: Grace, Lunch: Rice, Dinner: Steak",
    "Name: Yin, Lunch: Spaghetti, Dinner: Chicken",
    "Name: Anson, Lunch: Rice, Dinner: Curry",
    "Name: Grace, Lunch: Rice, Dinner: Steak",
    "Name: Yin, Lunch: Spaghetti, Dinner: Steak",
]


@pytest.fixture
def trained_model():
    tokenizer = WordTokenizer().fit(CORPUS)
    model = NGramLanguageModel(tokenizer, ModelConfig(order=3, smoothing=0.01))
    model.fit(CORPUS)
    return model


class TestVocabulary:
    def test_special_tokens_present_by_default(self):
        vocab = Vocabulary()
        for token in SPECIAL_TOKENS.values():
            assert token in vocab

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("hello")
        second = vocab.add("hello")
        assert first == second

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary()
        assert vocab.encode_token("never_seen") == vocab.unk_id

    def test_decode_out_of_range(self):
        with pytest.raises(IndexError):
            Vocabulary().decode_id(10_000)


class TestWordTokenizer:
    def test_tokenize_column_value_sentence(self):
        tokens = WordTokenizer().tokenize("Name: Grace, Lunch: 1")
        assert tokens == ["Name", ":", "Grace", ",", "Lunch", ":", "1"]

    def test_underscore_names_are_single_tokens(self):
        tokens = WordTokenizer().tokenize("gender: James_Smith")
        assert "James_Smith" in tokens

    def test_numbers_and_decimals(self):
        assert WordTokenizer().tokenize("x: 3.5 y: 42") == ["x", ":", "3.5", "y", ":", "42"]

    def test_caret_is_a_token(self):
        tokens = WordTokenizer().tokenize("20^35^42")
        assert tokens == ["20", "^", "35", "^", "42"]

    def test_detokenize_reattaches_punctuation(self):
        tokenizer = WordTokenizer()
        text = "Name: Grace, Lunch: 1"
        assert tokenizer.detokenize(tokenizer.tokenize(text)) == text

    def test_encode_adds_bos_eos(self):
        tokenizer = WordTokenizer().fit(["a b"])
        ids = tokenizer.encode("a b")
        assert ids[0] == tokenizer.vocabulary.bos_id
        assert ids[-1] == tokenizer.vocabulary.eos_id

    def test_encode_decode_round_trip(self):
        tokenizer = WordTokenizer().fit(CORPUS)
        sentence = CORPUS[0]
        assert tokenizer.decode(tokenizer.encode(sentence)) == sentence

    def test_token_collisions_finds_shared_labels(self):
        tokenizer = WordTokenizer()
        labeled = [("Lunch", 1), ("Dinner", 2), ("Access Device", 1), ("Genre", 1)]
        collisions = tokenizer.token_collisions(labeled)
        assert collisions == {"1": ["Access Device", "Genre", "Lunch"]}

    def test_token_collisions_empty_after_disambiguation(self):
        tokenizer = WordTokenizer()
        labeled = [("Lunch", "Rice"), ("Dinner", "Steak"), ("Genre", "Action")]
        assert tokenizer.token_collisions(labeled) == {}


class TestNGramModel:
    def test_requires_training_before_query(self):
        model = NGramLanguageModel(WordTokenizer())
        with pytest.raises(RuntimeError):
            model.next_token_distribution([])
        with pytest.raises(RuntimeError):
            model.generate(random.Random(0))

    def test_distribution_sums_to_one(self, trained_model):
        distribution = trained_model.next_token_distribution([])
        assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-9)

    def test_learns_training_transitions(self, trained_model):
        tokenizer = trained_model.tokenizer
        context = [tokenizer.vocabulary.encode_token(t) for t in ["Lunch", ":"]]
        distribution = trained_model.next_token_distribution(context)
        rice_id = tokenizer.vocabulary.encode_token("Rice")
        spaghetti_id = tokenizer.vocabulary.encode_token("Spaghetti")
        steak_id = tokenizer.vocabulary.encode_token("Steak")
        assert distribution[rice_id] > distribution[steak_id]
        assert distribution[spaghetti_id] > distribution[steak_id]

    def test_token_probability_positive_and_bounded(self, trained_model):
        vocab = trained_model.tokenizer.vocabulary
        context = [vocab.encode_token("Lunch"), vocab.encode_token(":")]
        for token in ("Rice", "Spaghetti", "Steak"):
            p = trained_model.token_probability(context, vocab.encode_token(token))
            assert 0.0 < p <= 1.0

    def test_token_probability_sums_to_one_over_vocab(self, trained_model):
        vocab = trained_model.tokenizer.vocabulary
        context = [vocab.encode_token("Lunch"), vocab.encode_token(":")]
        total = sum(
            trained_model.token_probability(context, token_id) for token_id in range(len(vocab))
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_score_token_sequence_matches_manual_sum(self, trained_model):
        vocab = trained_model.tokenizer.vocabulary
        context = [vocab.bos_id]
        tokens = [vocab.encode_token("Name"), vocab.encode_token(":")]
        manual = 0.0
        running = list(context)
        for token in tokens:
            manual += math.log(trained_model.token_probability(running[-2:], token))
            running.append(token)
        assert trained_model.score_token_sequence(context, tokens) == pytest.approx(manual)

    def test_generation_is_reproducible_with_seed(self, trained_model):
        first = trained_model.generate(random.Random(7), max_tokens=30)
        second = trained_model.generate(random.Random(7), max_tokens=30)
        assert first == second

    def test_generation_uses_training_vocabulary(self, trained_model):
        sentence = trained_model.generate(random.Random(3), max_tokens=40)
        known = set(trained_model.tokenizer.vocabulary.token_to_id)
        assert all(token in known for token in trained_model.tokenizer.tokenize(sentence))

    def test_perplexity_lower_on_training_data(self, trained_model):
        train_ppl = trained_model.perplexity(CORPUS)
        shuffled = ["Steak Dinner Grace : Name ,", "Chicken : Rice Lunch Yin"]
        assert train_ppl < trained_model.perplexity(shuffled)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ModelConfig(order=0)
        with pytest.raises(ValueError):
            ModelConfig(smoothing=-1)


class TestSampler:
    def test_sample_batch_size(self, trained_model):
        sampler = TemperatureSampler(trained_model, SamplerConfig(seed=1))
        assert len(sampler.sample_batch(5)) == 5

    def test_sample_valid_returns_none_when_impossible(self, trained_model):
        sampler = TemperatureSampler(trained_model, SamplerConfig(seed=1, max_retries=3))
        assert sampler.sample_valid(lambda s: False) is None

    def test_sample_valid_accepts_valid(self, trained_model):
        sampler = TemperatureSampler(trained_model, SamplerConfig(seed=1))
        assert sampler.sample_valid(lambda s: True) is not None

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SamplerConfig(temperature=-1)
        with pytest.raises(ValueError):
            SamplerConfig(max_tokens=0)


class TestFineTuner:
    def test_fine_tune_returns_trained_model(self):
        tokenizer = WordTokenizer()
        result = FineTuner(tokenizer, FineTuneConfig(epochs=2, batches=2)).fine_tune(CORPUS)
        assert result.model.is_trained
        assert len(result.perplexity_trace) >= 1

    def test_epoch_count_respected_in_trace(self):
        tokenizer = WordTokenizer()
        result = FineTuner(tokenizer, FineTuneConfig(epochs=3, batches=1,
                                                     validation_fraction=0.2)).fine_tune(CORPUS)
        assert len(result.perplexity_trace) == 3

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            FineTuner(WordTokenizer()).fine_tune([])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FineTuneConfig(epochs=0)
        with pytest.raises(ValueError):
            FineTuneConfig(validation_fraction=1.5)


class TestCooccurrenceEmbedding:
    def test_ambiguous_token_has_higher_context_entropy(self):
        """The Fig. 2 effect: a label reused across columns has a more diffuse context."""
        ambiguous_corpus = [
            "Lunch: 1, Dinner: 2, Device: 1, Genre: 1",
            "Lunch: 2, Dinner: 1, Device: 2, Genre: 2",
        ] * 3
        clean_corpus = [
            "Lunch: Rice, Dinner: Steak, Device: Laptop, Genre: Action",
            "Lunch: Pasta, Dinner: Chicken, Device: Phone, Genre: Comedy",
        ] * 3
        tokenizer = WordTokenizer()
        ambiguous = CooccurrenceEmbedding(tokenizer, window=3).fit(ambiguous_corpus)
        clean = CooccurrenceEmbedding(tokenizer, window=3).fit(clean_corpus)
        assert ambiguous.context_entropy("1") > clean.context_entropy("Rice")

    def test_similarity_is_symmetric_and_bounded(self):
        embedding = CooccurrenceEmbedding(WordTokenizer(), window=2).fit(CORPUS)
        forward = embedding.similarity("Rice", "Spaghetti")
        backward = embedding.similarity("Spaghetti", "Rice")
        assert forward == pytest.approx(backward)
        assert -1.0 <= forward <= 1.0

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            CooccurrenceEmbedding(WordTokenizer()).vector("x", ["y"])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            CooccurrenceEmbedding(WordTokenizer(), window=0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta", "1", "2"]),
                min_size=2, max_size=12))
def test_tokenizer_round_trip_property(words):
    """Property: space-joined word sentences survive the encode/decode round trip."""
    tokenizer = WordTokenizer()
    sentence = " ".join(words)
    tokenizer.fit([sentence])
    assert tokenizer.decode(tokenizer.encode(sentence)) == sentence
