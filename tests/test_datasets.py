"""Tests for the DIGIX-like generator and the toy tables."""

import pytest

from repro.datasets.digix import (
    DigixConfig,
    INTEREST_COLUMNS,
    PSEUDO_ID_COLUMNS,
    USER_CONTEXT_COLUMNS,
    generate_digix_like,
)
from repro.datasets.toy import fig2_single_table, fig4_child_tables, fig11_membership_and_visits
from repro.relational.contextual import ContextualVariableDetector
from repro.stats.correlation import association_matrix


class TestToyTables:
    def test_fig2_has_repeated_numerical_labels(self):
        table = fig2_single_table()
        row = table.row(0)
        ones = [name for name in ("Lunch", "Access Device", "Genre") if row[name] == 1]
        assert len(ones) == 3

    def test_fig4_yin_is_the_engaged_subject(self):
        meals, viewing, subject = fig4_child_tables()
        assert meals.where(subject, "Yin").num_rows > meals.where(subject, "Grace").num_rows
        assert viewing.where(subject, "Anson").column("Genre").unique() == ["Anime"]

    def test_fig11_contextual_ground_truth(self):
        visits, parent, subject = fig11_membership_and_visits()
        assert parent.num_rows == len(visits.unique_values(subject))


class TestDigixGenerator:
    def test_deterministic_given_seed(self, tiny_digix):
        regenerated = generate_digix_like(tiny_digix.config)
        assert regenerated.ads == tiny_digix.ads
        assert regenerated.feeds == tiny_digix.feeds

    def test_tables_share_user_ids(self, tiny_digix):
        ads_users = set(tiny_digix.ads.column("user_id"))
        feeds_users = set(tiny_digix.feeds.column("user_id"))
        assert ads_users == feeds_users

    def test_task_subgroups(self, tiny_digix):
        assert len(tiny_digix.task_ids()) == tiny_digix.config.n_tasks
        for trial in tiny_digix.trials():
            assert trial.ads.unique_values("task_id") == trial.ads.unique_values("task_id")
            assert trial.ads.num_rows > 0 and trial.feeds.num_rows > 0

    def test_click_through_rate_is_low_and_imbalanced(self):
        dataset = generate_digix_like(DigixConfig(
            n_tasks=2, n_users_per_task=40, ads_rows_per_user=(3, 6),
            feeds_rows_per_user=(2, 4), seed=3,
        ))
        rate = dataset.overall_click_rate()
        assert 0.0 <= rate < 0.08

    def test_contextual_columns_are_constant_per_user(self, tiny_digix):
        detector = ContextualVariableDetector(consistency_threshold=1.0)
        contextual = detector.contextual_columns(tiny_digix.ads, "user_id")
        for name in USER_CONTEXT_COLUMNS:
            assert name in contextual

    def test_pseudo_id_columns_are_near_unique(self, tiny_digix):
        feeds = tiny_digix.feeds
        for name in ("idocid", "i_entities"):
            assert feeds.column(name).nunique() >= 0.95 * feeds.num_rows
        assert set(PSEUDO_ID_COLUMNS) == {"e_et", "idocid", "i_entities"}

    def test_e_et_is_a_twelve_digit_timestamp(self, tiny_digix):
        for value in tiny_digix.ads.column("e_et").values[:20]:
            assert len(str(value)) == 12
            assert str(value).startswith("2022")

    def test_interest_columns_are_caret_lists(self, tiny_digix):
        for name in INTEREST_COLUMNS:
            sample = tiny_digix.feeds.column(name)[0]
            assert "^" in sample
            assert all(part.isdigit() for part in sample.split("^"))

    def test_feature_associations_are_weak(self):
        """Sec. 4.1.1: most pairwise associations sit around 0.2 (weakly informative)."""
        dataset = generate_digix_like(DigixConfig(
            n_tasks=1, n_users_per_task=60, ads_rows_per_user=(2, 4),
            feeds_rows_per_user=(2, 4), seed=5,
        ))
        ads = dataset.ads
        columns = ["gender", "age", "device_size", "net_type", "adv_prim_id", "slot_id"]
        matrix, _ = association_matrix(ads, columns)
        off_diag = [matrix[i, j] for i in range(len(columns)) for j in range(len(columns)) if i != j]
        mean_association = sum(off_diag) / len(off_diag)
        assert 0.02 < mean_association < 0.5

    def test_paper_scale_flag_increases_size(self):
        small = generate_digix_like(DigixConfig(n_tasks=1, n_users_per_task=5, seed=1))
        paper = generate_digix_like(DigixConfig(seed=1), paper_scale=True)
        assert paper.config.n_tasks == 8
        assert paper.ads.num_rows > small.ads.num_rows
        per_trial = [t.ads.num_rows + t.feeds.num_rows for t in paper.trials()]
        assert min(per_trial) > 750

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DigixConfig(n_tasks=0)
        with pytest.raises(ValueError):
            DigixConfig(click_through_rate=0.0)
        with pytest.raises(ValueError):
            DigixConfig(segment_signal=2.0)

    def test_subgroup_filters_both_tables(self, tiny_digix):
        task_id = tiny_digix.task_ids()[0]
        subgroup = tiny_digix.subgroup(task_id)
        assert set(subgroup.ads.column("task_id")) == {task_id}
        assert set(subgroup.feeds.column("task_id")) == {task_id}
