"""Integration tests: the three end-to-end pipelines on a tiny DIGIX-like trial."""

import pytest

from repro.connecting.connector import ConnectorConfig
from repro.datasets.digix import INTEREST_COLUMNS, PSEUDO_ID_COLUMNS
from repro.enhancement.enhancer import EnhancerConfig
from repro.evaluation.fidelity import FidelityEvaluator
from repro.pipelines.base import MultiTablePipeline
from repro.pipelines.config import PipelineConfig
from repro.pipelines.derec import DERECPipeline
from repro.pipelines.flatten_baseline import DirectFlattenPipeline
from repro.pipelines.greater import GReaTERPipeline


def _config(semantic_level="none", special=False, method="threshold_mean", seed=0):
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level=semantic_level,
                                apply_special_transform=special, seed=seed),
        connector=ConnectorConfig(independence_method=method, remove_noisy_columns=False),
    )


@pytest.fixture(scope="module")
def trial(tiny_digix):
    return tiny_digix.trials()[0]


class TestPreparation:
    def test_parent_contains_contextual_user_columns(self, trial):
        pipeline = GReaTERPipeline(_config())
        prepared = pipeline.prepare(trial.ads, trial.feeds)
        for name in ("gender", "age", "residence"):
            assert name in prepared.parent.column_names
        assert prepared.parent.num_rows == len(trial.ads.unique_values("user_id"))

    def test_noisy_and_excluded_columns_removed(self, trial):
        pipeline = GReaTERPipeline(_config())
        prepared = pipeline.prepare(trial.ads, trial.feeds)
        all_columns = set(prepared.first_child.column_names) | set(prepared.second_child.column_names)
        assert "task_id" not in all_columns
        for name in PSEUDO_ID_COLUMNS:
            assert name not in all_columns

    def test_original_flat_reference_has_no_subject_column(self, trial):
        pipeline = GReaTERPipeline(_config())
        prepared = pipeline.prepare(trial.ads, trial.feeds)
        assert "user_id" not in prepared.original_flat.column_names
        assert prepared.original_flat.num_rows > 0


class TestGReaTERPipeline:
    @pytest.fixture(scope="class")
    def result(self, tiny_digix):
        trial = tiny_digix.trials()[0]
        return GReaTERPipeline(_config(semantic_level="understandability")).run(
            trial.ads, trial.feeds)

    def test_synthetic_flat_schema_matches_reference(self, result):
        assert set(result.synthetic_flat.column_names) <= set(result.original_flat.column_names)
        assert result.synthetic_flat.num_rows > 0

    def test_output_is_in_original_label_space(self, result):
        """Sec. 3.2.3: the inverse mapping restores the original numeric labels."""
        for name in ("gender", "age", "device_size"):
            synthetic_values = set(result.synthetic_flat.column(name).unique())
            original_values = set(result.original_flat.column(name).unique())
            assert synthetic_values <= original_values
            assert all(isinstance(v, int) for v in synthetic_values)

    def test_details_record_connection_and_mapping(self, result):
        assert result.pipeline_name == "greater"
        assert "independence_method" in result.details
        assert result.details["semantic_level"] == "understandability"
        assert result.details["rows_connected"] <= result.details["rows_flattened"]

    def test_fidelity_evaluation_runs(self, result):
        report = FidelityEvaluator().evaluate(result.original_flat, result.synthetic_flat)
        assert len(report) > 10
        assert all(0.0 <= p <= 1.0 for p in report.p_values())

    def test_special_transform_round_trips_interest_columns(self, tiny_digix):
        trial = tiny_digix.trials()[1]
        result = GReaTERPipeline(_config(semantic_level="understandability", special=True)).run(
            trial.ads, trial.feeds)
        for name in INTEREST_COLUMNS:
            if name in result.synthetic_flat.column_names:
                for value in result.synthetic_flat.column(name).values[:5]:
                    assert " and " not in str(value)


class TestBaselinePipelines:
    def test_direct_flatten_runs_and_reports_bias(self, trial):
        result = DirectFlattenPipeline(_config()).run(trial.ads, trial.feeds)
        assert result.pipeline_name == "direct_flatten"
        assert result.details["rows_flattened"] >= result.original_flat.num_rows
        assert 0.0 < result.details["max_subject_share"] <= 1.0

    def test_derec_runs_two_rounds(self, trial):
        result = DERECPipeline(_config()).run(trial.ads, trial.feeds)
        assert result.pipeline_name == "derec"
        assert result.details["rounds"] == 2
        assert set(result.synthetic_flat.column_names) <= set(result.original_flat.column_names)

    def test_all_pipelines_share_the_same_reference(self, trial):
        configs = _config()
        results = [
            GReaTERPipeline(configs).run(trial.ads, trial.feeds),
            DirectFlattenPipeline(configs).run(trial.ads, trial.feeds),
        ]
        assert results[0].original_flat == results[1].original_flat


class TestPipelineConfig:
    def test_backbone_uses_paper_hyperparameters(self):
        config = PipelineConfig()
        backbone = config.backbone()
        assert backbone.fine_tune.epochs == 10
        assert backbone.fine_tune.batches == 5

    def test_base_pipeline_is_abstract(self, trial):
        with pytest.raises(NotImplementedError):
            MultiTablePipeline(_config()).run(trial.ads, trial.feeds)

    def test_generation_engine_knob_threads_through(self):
        config = PipelineConfig(generation_engine="object")
        assert config.backbone().sampler.engine == "object"
        parent_child = config.parent_child()
        assert parent_child.parent.sampler.engine == "object"
        assert parent_child.child.sampler.engine == "object"

    def test_n_synthetic_subjects_respected(self, trial):
        config = PipelineConfig(
            seed=0, drop_columns=("task_id",), n_synthetic_subjects=3,
            connector=ConnectorConfig(independence_method="threshold_mean",
                                      remove_noisy_columns=False),
        )
        result = GReaTERPipeline(config).run(trial.ads, trial.feeds)
        assert result.synthetic_parent.num_rows == 3
