"""Tests for the pluggable column storage backends (repro.frame.backend)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frame.backend import (
    BACKEND_KINDS,
    MISSING_VALUES,
    get_default_backend,
    is_missing,
    set_default_backend,
    using_backend,
)
from repro.frame.column import Column, coerce_value, infer_dtype
from repro.frame.table import Table


class TestMissingUnification:
    """MISSING_VALUES and is_missing agree on one definition of missing."""

    def test_every_declared_missing_value_is_missing(self):
        for value in MISSING_VALUES:
            assert is_missing(value)

    def test_nan_is_declared(self):
        assert any(isinstance(v, float) and math.isnan(v) for v in MISSING_VALUES)
        assert None in MISSING_VALUES

    def test_predicate_covers_numpy_nan(self):
        assert is_missing(np.float64("nan"))
        assert not is_missing(0.0)
        assert not is_missing("")
        assert not is_missing(False)

    def test_missing_surfaces_as_none_on_both_backends(self):
        for kind in ("object", "numpy"):
            with using_backend(kind):
                col = Column("a", [1.5, None, float("nan")])
            assert col.values == [1.5, None, None], kind
            assert col.missing_count() == 2

    def test_validity_mask_uses_the_same_definition(self):
        for kind in ("object", "numpy"):
            with using_backend(kind):
                col = Column("a", [1.0, None, float("nan"), 4.0])
            mask = col.validity_mask()
            assert mask.tolist() == [not is_missing(v) for v in [1.0, None, float("nan"), 4.0]]


class TestInferDtypeEdgeCases:
    def test_bool_vs_int_precedence_is_mixed(self):
        assert infer_dtype([True, 1]) == "mixed"
        assert infer_dtype([True, False]) == "bool"
        assert infer_dtype([1, 0]) == "int"

    def test_numpy_scalar_types(self):
        assert infer_dtype([np.int32(1), np.int64(2)]) == "int"
        assert infer_dtype([np.float32(1.5)]) == "float"
        assert infer_dtype([np.bool_(True)]) == "bool"
        assert infer_dtype([np.str_("x")]) == "str"

    def test_all_missing_is_empty(self):
        assert infer_dtype([None, float("nan"), None]) == "empty"

    def test_numpy_nan_is_ignored(self):
        assert infer_dtype([np.float64("nan"), 3]) == "int"


class TestCoerceValueEdgeCases:
    def test_numpy_str_becomes_python_str(self):
        value = coerce_value(np.str_("abc"))
        assert value == "abc" and type(value) is str

    def test_bool_is_not_coerced_to_int(self):
        assert coerce_value(np.bool_(False)) is False

    def test_nested_values_pass_through(self):
        payload = {"k": 1}
        assert coerce_value(payload) is payload


class TestBackendSelection:
    def test_auto_uses_numpy_for_typed_columns(self):
        with using_backend("auto"):
            assert Column("a", [1, 2]).backend_kind == "numpy"
            assert Column("a", [1.5]).backend_kind == "numpy"
            assert Column("a", [True]).backend_kind == "numpy"
            assert Column("a", ["x"]).backend_kind == "numpy"

    def test_auto_keeps_object_for_mixed_columns(self):
        with using_backend("auto"):
            assert Column("a", [1, "x"]).backend_kind == "object"
            assert Column("a", [None, None]).backend_kind == "object"

    def test_object_policy_forces_object_everywhere(self):
        with using_backend("object"):
            assert Column("a", [1, 2]).backend_kind == "object"
            assert not Column("a", [1, 2]).is_vectorized

    def test_using_backend_restores_previous(self):
        before = get_default_backend()
        with using_backend("object"):
            assert get_default_backend() == "object"
        assert get_default_backend() == before

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            set_default_backend("arrow")
        assert get_default_backend() in BACKEND_KINDS

    def test_unhashable_str_dtype_values_fall_back(self):
        with using_backend("numpy"):
            col = Column("a", [["x"], ["y"]], dtype="str")
        assert col.backend_kind == "object"
        assert col.values == [["x"], ["y"]]


class TestTypedColumnApi:
    def test_as_array_is_zero_copy_for_floats(self):
        with using_backend("numpy"):
            col = Column("a", [1.5, 2.5])
        first = col.as_array()
        second = col.as_array()
        assert first is second
        assert first.dtype == np.float64

    def test_as_array_int_without_missing_keeps_int_dtype(self):
        with using_backend("numpy"):
            col = Column("a", [1, 2, 3])
        assert col.as_array().dtype == np.int64
        assert col.as_array().tolist() == [1, 2, 3]

    def test_as_array_promotes_to_float_with_missing(self):
        with using_backend("numpy"):
            col = Column("a", [1, None, 3])
        arr = col.as_array()
        assert arr.dtype == np.float64
        assert math.isnan(arr[1])

    def test_as_array_rejects_strings(self):
        with using_backend("numpy"):
            col = Column("a", ["x", "y"])
        with pytest.raises(TypeError):
            col.as_array()

    def test_codes_and_categories_round_trip(self):
        with using_backend("numpy"):
            col = Column("a", ["b", "a", None, "b"])
        codes = col.codes()
        categories = col.categories()
        assert categories == ["b", "a"]
        assert codes.tolist() == [0, 1, -1, 0]
        assert [None if c < 0 else categories[c] for c in codes] == col.values

    def test_factorize_works_on_every_backend(self):
        for kind in ("object", "numpy"):
            with using_backend(kind):
                col = Column("a", [3, 1, 3, None, 2])
            codes, categories = col.factorize()
            assert categories == [3, 1, 2]
            assert codes.tolist() == [0, 1, 0, -1, 2]

    def test_take_or_missing_inserts_none(self):
        for kind in ("object", "numpy"):
            with using_backend(kind):
                col = Column("a", [10, 20, 30])
            taken = col.take_or_missing(np.asarray([2, -1, 0]))
            assert taken.values == [30, None, 10]

    def test_values_are_plain_python_scalars(self):
        with using_backend("numpy"):
            col = Column("a", [1, 2])
        assert all(type(v) is int for v in col.values)
        assert type(col[0]) is int

    def test_ndarray_construction_fast_path(self):
        with using_backend("numpy"):
            col = Column("a", np.arange(5))
        assert col.dtype == "int"
        assert col.backend_kind == "numpy"
        assert col.values == [0, 1, 2, 3, 4]

    def test_ndarray_construction_respects_object_policy(self):
        with using_backend("object"):
            col = Column("a", np.asarray([1.0, 2.0]))
        assert col.backend_kind == "object"
        assert col.values == [1.0, 2.0]

    def test_take_or_missing_from_empty_column(self):
        for kind in ("object", "numpy"):
            with using_backend(kind):
                empty_int = Column("a", [1, 2])[:0]
                empty_str = Column("s", ["x"])[:0]
            assert empty_int.take_or_missing(np.asarray([-1, -1])).values == [None, None]
            assert empty_str.take_or_missing(np.asarray([-1])).values == [None]

    def test_left_join_against_empty_right_table(self):
        from repro.frame.ops import left_join

        for kind in ("object", "numpy"):
            with using_backend(kind):
                left = Table({"k": [1, 2], "a": ["x", "y"]})
                right = Table({"k": [1, 2], "b": [0.5, 1.5]}).where("k", 99)
            joined = left_join(left, right, on="k")
            assert joined.num_rows == 2
            assert joined.column("b").values == [None, None], kind

    def test_large_ints_fall_back_to_object(self):
        with using_backend("numpy"):
            col = Column("a", [2 ** 70, 1])
        assert col.backend_kind == "object"
        assert col.values == [2 ** 70, 1]


class TestCrossBackendEquality:
    def test_tables_compare_equal_across_backends(self):
        data = {"i": [1, None, 3], "s": ["x", "y", None], "f": [0.5, 1.5, None]}
        with using_backend("object"):
            obj = Table({k: list(v) for k, v in data.items()})
        with using_backend("numpy"):
            vec = Table({k: list(v) for k, v in data.items()})
        assert obj == vec
        assert vec == obj
        assert obj.dtypes() == vec.dtypes()


_value = st.one_of(
    st.none(),
    st.integers(-10_000, 10_000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=6),
    st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.fixed_dictionaries({"a": _value, "b": _value, "c": _value}), max_size=25))
def test_from_records_to_records_round_trip_property(records):
    """Property: from_records -> to_records is the identity on both backends."""
    for kind in ("object", "numpy"):
        with using_backend(kind):
            table = Table.from_records(records, columns=["a", "b", "c"])
        assert table.to_records() == records, kind


@settings(max_examples=40, deadline=None)
@given(st.lists(st.one_of(st.none(), st.integers(-50, 50), st.floats(-5, 5)), max_size=30))
def test_column_round_trip_matches_across_backends_property(values):
    """Property: both backends surface identical values, dtype and uniques."""
    with using_backend("object"):
        obj = Column("a", list(values))
    with using_backend("numpy"):
        vec = Column("a", list(values))
    assert obj.values == vec.values
    assert obj.dtype == vec.dtype
    assert obj.unique() == vec.unique()
    assert obj.value_counts() == vec.value_counts()
    assert obj == vec
