"""Tests for the artifact store: table format, bundles, atomic writes, CSV fixes."""

import json
import math
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frame.backend import CategoricalBackend, NumericBackend, ObjectBackend, using_backend
from repro.frame.io import _parse_cell, read_csv, write_csv
from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig
from repro.llm.sampler import SamplerConfig
from repro.relational.parent_child import ParentChildConfig, ParentChildSynthesizer
from repro.store import (
    StoreError,
    atomic_write_text,
    load_great_synthesizer,
    load_parent_child,
    read_manifest,
    read_table,
    save_great_synthesizer,
    save_parent_child,
    write_table,
)
from repro.store.bundle import BundleWriter, load_bundle
from repro.store.codec import decode_value, dumps, encode_value, loads


# ---------------------------------------------------------------------------
# CSV satellite fixes
# ---------------------------------------------------------------------------

class TestParseCell:
    def test_underscored_numerics_stay_strings(self):
        assert _parse_cell("1_000") == "1_000"
        assert _parse_cell("1_0.5") == "1_0.5"
        assert _parse_cell("_1") == "_1"
        assert _parse_cell("1e1_0") == "1e1_0"

    def test_plain_numerics_still_parse(self):
        assert _parse_cell("1000") == 1000
        assert _parse_cell("-3") == -3
        assert _parse_cell("2.5") == 2.5
        assert _parse_cell("1e3") == 1000.0
        assert _parse_cell("") is None
        assert _parse_cell("hello") == "hello"

    def test_underscored_string_round_trips_through_csv(self, tmp_path):
        table = Table({"code": ["1_000", "2_5", "plain"]})
        loaded = read_csv(write_csv(table, tmp_path / "t.csv"))
        assert loaded.column("code").values == ["1_000", "2_5", "plain"]
        assert loaded.column("code").dtype == "str"


class TestCompressionKnob:
    @pytest.fixture(scope="class")
    def fitted_great(self):
        table = Table({"color": ["red", "blue"] * 40, "size": list(range(80))})
        config = GReaTConfig(
            fine_tune=FineTuneConfig(epochs=2, batches=2, model=ModelConfig(order=4)))
        return GReaTSynthesizer(config).fit(table)

    def test_manifest_records_compress_choice(self, fitted_great, tmp_path):
        save_great_synthesizer(fitted_great, tmp_path / "plain")
        save_great_synthesizer(fitted_great, tmp_path / "small", compress=True)
        assert read_manifest(tmp_path / "plain")["compress"] is False
        assert read_manifest(tmp_path / "small")["compress"] is True

    def test_loader_handles_both_codecs(self, fitted_great, tmp_path):
        expected = fitted_great.sample(6, seed=3)
        for compress in (False, True):
            path = tmp_path / "bundle_{}".format(compress)
            save_great_synthesizer(fitted_great, path, compress=compress)
            assert load_great_synthesizer(path).sample(6, seed=3) == expected

    def test_compressed_bundle_is_smaller(self, fitted_great, tmp_path):
        save_great_synthesizer(fitted_great, tmp_path / "plain")
        save_great_synthesizer(fitted_great, tmp_path / "small", compress=True)
        assert (tmp_path / "small").stat().st_size < (tmp_path / "plain").stat().st_size

    def test_legacy_manifest_defaults_to_compressed(self, fitted_great, tmp_path):
        """Bundles written before the knob carry no ``compress`` entry; the
        reader must report them as compressed (their historical codec)."""
        import zipfile

        from repro.store.bundle import BundleReader, MANIFEST_NAME

        path = tmp_path / "bundle"
        save_great_synthesizer(fitted_great, path)
        with zipfile.ZipFile(path) as archive:
            parts = {name: archive.read(name) for name in archive.namelist()}
        manifest = json.loads(parts[MANIFEST_NAME])
        del manifest["compress"]
        legacy = tmp_path / "legacy"
        with zipfile.ZipFile(legacy, "w") as archive:
            for name, blob in parts.items():
                if name != MANIFEST_NAME:
                    archive.writestr(name, blob)
            archive.writestr(MANIFEST_NAME, json.dumps(manifest))
        assert BundleReader(legacy).compress is True


class TestAtomicWrites:
    def test_write_csv_leaves_no_temp_files(self, tmp_path):
        table = Table({"a": [1, 2, 3]})
        write_csv(table, tmp_path / "t.csv")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.csv"]

    def test_write_csv_replaces_existing_file(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(Table({"a": [1]}), path)
        write_csv(Table({"a": [2, 3]}), path)
        assert read_csv(path).column("a").values == [2, 3]

    def test_failed_write_preserves_old_content(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(Table({"a": [1]}), path)

        class Exploding(Table):
            def iter_rows(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            write_csv(Exploding({"a": [9]}), path)
        assert read_csv(path).column("a").values == [1]
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.csv"]

    def test_atomic_write_text(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["x.json"]

    def test_atomic_writes_honor_the_umask(self, tmp_path):
        """mkstemp's 0600 must not leak through: the published artifact has
        the permissions a plain open() would have produced."""
        mask = os.umask(0o022)
        try:
            write_csv(Table({"a": [1]}), tmp_path / "t.csv")
            assert (tmp_path / "t.csv").stat().st_mode & 0o777 == 0o644
        finally:
            os.umask(mask)


# ---------------------------------------------------------------------------
# typed codec
# ---------------------------------------------------------------------------

class TestCodec:
    def test_round_trip_preserves_types(self):
        value = {
            "tuple": (1, 2.5, None),
            "list": [True, False],
            3: "int key",
            "nested": {"x": (1,)},
            "nan": float("nan"),
        }
        decoded = loads(dumps(value))
        assert decoded["tuple"] == (1, 2.5, None)
        assert isinstance(decoded["tuple"], tuple)
        assert isinstance(decoded["list"], list)
        assert decoded[3] == "int key"
        assert isinstance(decoded["nested"]["x"], tuple)
        assert math.isnan(decoded["nan"])

    def test_bool_not_conflated_with_int(self):
        decoded = decode_value(encode_value([True, 1]))
        assert decoded[0] is True and decoded[1] == 1 and decoded[1] is not True

    def test_unsupported_type_rejected(self):
        with pytest.raises(StoreError):
            encode_value({"bad": object()})

    def test_malformed_payload_rejected(self):
        with pytest.raises(StoreError):
            decode_value({"t": "martian"})
        with pytest.raises(StoreError):
            decode_value(["not", "an", "envelope"])


# ---------------------------------------------------------------------------
# binary table format
# ---------------------------------------------------------------------------

def _assert_exact_round_trip(table, path):
    loaded = read_table(write_table(table, path))
    assert loaded == table
    assert loaded.dtypes() == table.dtypes()
    for name in table.column_names:
        original, restored = table.column(name)._backend, loaded.column(name)._backend
        assert type(restored) is type(original)
        if isinstance(original, CategoricalBackend):
            assert restored.categories == original.categories
            assert restored.codes.tolist() == original.codes.tolist()
        elif isinstance(original, NumericBackend):
            assert restored.data.dtype == original.data.dtype
            assert (restored.mask is None) == (original.mask is None)
    return loaded


class TestTableFormat:
    def test_mixed_dtype_table_round_trips(self, tmp_path):
        table = Table({
            "i": [1, None, -3],
            "f": [0.5, float("nan"), 2.0],
            "s": ["a", None, "b"],
            "b": [True, False, None],
            "m": [1, "two", 2.5],
            "e": [None, None, None],
        })
        loaded = _assert_exact_round_trip(table, tmp_path / "t.npz")
        assert loaded.column("m").values == [1, "two", 2.5]

    def test_unicode_and_embedded_nul_strings(self, tmp_path):
        table = Table({"s": ["héllo", "a\x00b", "", "日本語", "tab\tnewline\n"]})
        loaded = _assert_exact_round_trip(table, tmp_path / "t.npz")
        assert loaded.column("s").values == table.column("s").values

    def test_object_backend_round_trips(self, tmp_path):
        with using_backend("object"):
            table = Table({"a": [1, 2, None], "s": ["x", "y", None]})
        loaded = read_table(write_table(table, tmp_path / "t.npz"))
        assert loaded == table
        assert isinstance(loaded.column("a")._backend, ObjectBackend)

    def test_unsupported_object_rejected(self, tmp_path):
        table = Table({"bad": [object(), object()]})
        with pytest.raises(StoreError):
            write_table(table, tmp_path / "t.npz")

    def test_atomic_table_write(self, tmp_path):
        write_table(Table({"a": [1]}), tmp_path / "t.npz")
        write_table(Table({"a": [2]}), tmp_path / "t.npz")
        assert read_table(tmp_path / "t.npz").column("a").values == [2]
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.npz"]

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.lists(
        st.one_of(st.none(), st.booleans(), st.integers(-2**40, 2**40),
                  st.floats(allow_nan=False, allow_infinity=True), st.text(max_size=8)),
        min_size=0, max_size=20,
    ))
    def test_property_any_scalar_column_round_trips(self, tmp_path, values):
        table = Table({"v": values})
        loaded = read_table(write_table(table, tmp_path / "p.npz"))
        assert loaded == table
        assert loaded.dtypes() == table.dtypes()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.lists(st.one_of(st.none(), st.text(max_size=6)), min_size=1, max_size=30))
    def test_property_categorical_codes_preserved(self, tmp_path, values):
        table = Table({"s": values})
        loaded = read_table(write_table(table, tmp_path / "c.npz"))
        mine, theirs = table.column("s")._backend, loaded.column("s")._backend
        if isinstance(mine, CategoricalBackend):
            assert theirs.categories == mine.categories
            assert theirs.codes.tolist() == mine.codes.tolist()
        assert loaded.column("s").values == table.column("s").values


# ---------------------------------------------------------------------------
# synthesizer bundles
# ---------------------------------------------------------------------------

def _great_config(engine: str, seed: int = 3) -> GReaTConfig:
    return GReaTConfig(
        fine_tune=FineTuneConfig(epochs=2, batches=2, seed=seed,
                                 model=ModelConfig(order=3), engine=engine),
        sampler=SamplerConfig(temperature=0.9, top_k=8, seed=seed, engine=engine),
        seed=seed,
    )


@pytest.fixture
def training_table():
    return Table({
        "name": ["grace", "yin", "anson", "maya"] * 6,
        "lunch": [1, 2, 1, 3] * 6,
        "score": [0.5, 1.5, 0.5, 2.5] * 6,
    })


class TestGreatBundle:
    @pytest.mark.parametrize("engine", ["object", "compiled"])
    def test_save_load_sample_bit_identical(self, engine, training_table, tmp_path):
        synth = GReaTSynthesizer(_great_config(engine)).fit(training_table)
        expected = synth.sample(12, seed=11)
        save_great_synthesizer(synth, tmp_path / "bundle")
        loaded = load_great_synthesizer(tmp_path / "bundle")
        assert loaded.sample(12, seed=11) == expected
        assert loaded.perplexity_trace == synth.perplexity_trace
        assert loaded.training_engine == synth.training_engine

    def test_cross_engine_load_is_identical(self, training_table, tmp_path):
        """An object-trained bundle sampled on load matches byte for byte —
        the persisted counts are engine-neutral."""
        expected = None
        for engine in ("object", "compiled"):
            synth = GReaTSynthesizer(_great_config(engine)).fit(training_table)
            save_great_synthesizer(synth, tmp_path / engine)
            sampled = load_great_synthesizer(tmp_path / engine).sample(10, seed=5)
            if expected is None:
                expected = sampled
            # both engines train bit-identical models, so both bundles
            # reproduce the same synthetic table
            assert sampled == expected

    @pytest.mark.parametrize("engine", ["object", "compiled"])
    def test_mmap_load_samples_byte_identical(self, engine, training_table, tmp_path):
        """mmap=True serves the count tables as read-only file mappings and
        the sampled output is byte-identical to the eager load."""
        import numpy as np

        synth = GReaTSynthesizer(_great_config(engine)).fit(training_table)
        save_great_synthesizer(synth, tmp_path / "bundle")
        eager = load_great_synthesizer(tmp_path / "bundle")
        mapped = load_great_synthesizer(tmp_path / "bundle", mmap=True)
        counts = mapped.model._array_counts
        assert isinstance(counts.tokens0, np.memmap)
        assert all(isinstance(tokens, np.memmap) for tokens in counts.tokens.values())
        assert mapped.sample(12, seed=11) == eager.sample(12, seed=11)

    def test_mmap_falls_back_for_compressed_bundles(self, training_table, tmp_path):
        """Deflated NPZ entries cannot be mapped; the reader silently reads
        them eagerly and sampling still matches."""
        import numpy as np

        synth = GReaTSynthesizer(_great_config("compiled")).fit(training_table)
        save_great_synthesizer(synth, tmp_path / "bundle", compress=True)
        eager = load_great_synthesizer(tmp_path / "bundle")
        mapped = load_great_synthesizer(tmp_path / "bundle", mmap=True)
        counts = mapped.model._array_counts
        assert not any(isinstance(tokens, np.memmap) for tokens in counts.tokens.values())
        assert mapped.sample(12, seed=11) == eager.sample(12, seed=11)

    def test_mmap_arrays_match_eager_bytes(self, training_table, tmp_path):
        """Every mapped array equals its eagerly loaded counterpart exactly."""
        import numpy as np

        from repro.store.bundle import BundleReader

        synth = GReaTSynthesizer(_great_config("compiled")).fit(training_table)
        save_great_synthesizer(synth, tmp_path / "bundle")
        eager = BundleReader(tmp_path / "bundle").arrays("model_arrays")
        mapped = BundleReader(tmp_path / "bundle", mmap=True).arrays("model_arrays")
        assert sorted(eager) == sorted(mapped)
        for name in eager:
            assert eager[name].dtype == mapped[name].dtype
            assert np.array_equal(eager[name], mapped[name])

    def test_manifest_records_version_kind_digest(self, training_table, tmp_path):
        synth = GReaTSynthesizer(_great_config("compiled")).fit(training_table)
        digest = save_great_synthesizer(synth, tmp_path / "bundle")
        manifest = read_manifest(tmp_path / "bundle")
        assert manifest["kind"] == "great_synthesizer"
        assert manifest["digest"] == digest
        assert manifest["format_version"] == 1
        assert manifest["meta"]["training_engine"] in ("object", "compiled")

    def test_newer_format_version_rejected(self, training_table, tmp_path):
        import zipfile

        synth = GReaTSynthesizer(_great_config("compiled")).fit(training_table)
        save_great_synthesizer(synth, tmp_path / "bundle")
        with zipfile.ZipFile(tmp_path / "bundle") as archive:
            parts = {name: archive.read(name) for name in archive.namelist()}
        manifest = json.loads(parts["manifest.json"])
        manifest["format_version"] = 99
        parts["manifest.json"] = json.dumps(manifest).encode()
        with zipfile.ZipFile(tmp_path / "bundle", "w") as archive:
            for name, blob in parts.items():
                archive.writestr(name, blob)
        with pytest.raises(StoreError):
            load_great_synthesizer(tmp_path / "bundle")

    def test_non_bundle_file_rejected(self, tmp_path):
        (tmp_path / "junk").write_bytes(b"not a zip archive")
        with pytest.raises(StoreError):
            load_bundle(tmp_path / "junk")

    def test_unfitted_synthesizer_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            save_great_synthesizer(GReaTSynthesizer(_great_config("compiled")),
                                   tmp_path / "bundle")

    def test_atomic_bundle_overwrite(self, training_table, tmp_path):
        synth = GReaTSynthesizer(_great_config("compiled")).fit(training_table)
        first = save_great_synthesizer(synth, tmp_path / "bundle")
        second = save_great_synthesizer(synth, tmp_path / "bundle")
        assert first == second
        assert sorted(p.name for p in tmp_path.iterdir()) == ["bundle"]
        assert load_great_synthesizer(tmp_path / "bundle").sample(3, seed=1).num_rows == 3

    def test_unknown_bundle_kind_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            BundleWriter("martian")

    def test_load_bundle_dispatches_on_kind(self, training_table, tmp_path):
        synth = GReaTSynthesizer(_great_config("compiled")).fit(training_table)
        save_great_synthesizer(synth, tmp_path / "bundle")
        loaded = load_bundle(tmp_path / "bundle")
        assert isinstance(loaded, GReaTSynthesizer)


class TestParentChildBundle:
    def test_round_trip_sample_identical(self, tmp_path):
        parent = Table({"user": ["u1", "u2", "u3"], "city": ["x", "y", "x"]})
        child = Table({"user": ["u1", "u1", "u2", "u3", "u3"],
                       "clicks": [1, 2, 1, 3, 2]})
        config = ParentChildConfig(parent=_great_config("compiled"),
                                   child=_great_config("compiled"), seed=3)
        synth = ParentChildSynthesizer(config).fit(parent, child, "user")
        expected = synth.sample_all(4, seed=9)
        save_parent_child(synth, tmp_path / "pc")
        loaded = load_parent_child(tmp_path / "pc")
        got = loaded.sample_all(4, seed=9)
        assert got == expected
        assert loaded._children_per_subject == synth._children_per_subject

    def test_subject_offset_shifts_keys_only(self, tmp_path):
        parent = Table({"user": ["u1", "u2"], "city": ["x", "y"]})
        child = Table({"user": ["u1", "u2", "u2"], "clicks": [1, 2, 3]})
        config = ParentChildConfig(parent=_great_config("compiled"),
                                   child=_great_config("compiled"), seed=3)
        synth = ParentChildSynthesizer(config).fit(parent, child, "user")
        base_parent, base_child = synth.sample(3, seed=5)
        off_parent, off_child = synth.sample(3, seed=5, subject_offset=10)
        assert off_parent.column("user").values == [
            "synthetic_subject_10", "synthetic_subject_11", "synthetic_subject_12"]
        assert off_parent.drop("user") == base_parent.drop("user")
        assert off_child.drop("user") == base_child.drop("user")


class TestBundleVerification:
    """The ``verify`` knob: digests re-checked against the manifest on load."""

    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        table = Table({
            "name": ["grace", "yin", "anson", "maya"] * 6,
            "lunch": [1, 2, 1, 3] * 6,
            "score": [0.5, 1.5, 0.5, 2.5] * 6,
        })
        synth = GReaTSynthesizer(_great_config("compiled")).fit(table)
        path = tmp_path_factory.mktemp("verify") / "bundle"
        save_great_synthesizer(synth, path)
        return path, synth

    @staticmethod
    def _rewrite(src, dst, mutate):
        """Copy the bundle zip, letting *mutate* edit the raw part dict."""
        import zipfile

        with zipfile.ZipFile(src) as archive:
            parts = {name: archive.read(name) for name in archive.namelist()}
        mutate(parts)
        with zipfile.ZipFile(dst, "w") as archive:
            for name, blob in parts.items():
                archive.writestr(name, blob)

    def test_truncated_bundle_rejected(self, saved, tmp_path):
        path, _ = saved
        blob = path.read_bytes()
        (tmp_path / "cut").write_bytes(blob[: len(blob) // 2])
        with pytest.raises(StoreError):
            load_great_synthesizer(tmp_path / "cut")

    def test_bit_flipped_part_rejected(self, saved, tmp_path):
        from repro.store.bundle import BundleIntegrityError

        path, _ = saved

        def flip(parts):
            victim = sorted(name for name in parts if name != "manifest.json")[0]
            blob = parts[victim]
            parts[victim] = bytes([blob[0] ^ 0x01]) + blob[1:]

        self._rewrite(path, tmp_path / "flipped", flip)
        with pytest.raises(BundleIntegrityError):
            load_great_synthesizer(tmp_path / "flipped")

    def test_missing_part_rejected(self, saved, tmp_path):
        from repro.store.bundle import BundleIntegrityError

        path, _ = saved

        def drop(parts):
            victim = sorted(name for name in parts if name != "manifest.json")[0]
            del parts[victim]

        self._rewrite(path, tmp_path / "short", drop)
        with pytest.raises(BundleIntegrityError):
            load_great_synthesizer(tmp_path / "short")

    def test_size_mismatch_rejected(self, saved, tmp_path):
        from repro.store.bundle import BundleIntegrityError

        path, _ = saved

        def grow(parts):
            victim = sorted(name for name in parts if name != "manifest.json")[0]
            parts[victim] = parts[victim] + b"\x00"

        self._rewrite(path, tmp_path / "grown", grow)
        with pytest.raises(BundleIntegrityError):
            load_great_synthesizer(tmp_path / "grown")

    def test_verify_false_skips_digest_check(self, saved, tmp_path):
        from repro.store.bundle import BundleIntegrityError

        path, synth = saved

        def lie(parts):
            manifest = json.loads(parts["manifest.json"])
            manifest["digest"] = "0" * 64
            parts["manifest.json"] = json.dumps(manifest).encode()

        self._rewrite(path, tmp_path / "lied", lie)
        with pytest.raises(BundleIntegrityError):
            load_great_synthesizer(tmp_path / "lied")
        loaded = load_great_synthesizer(tmp_path / "lied", verify=False)
        assert loaded.sample(4, seed=1).num_rows == 4

    def test_pristine_bundle_passes_verification(self, saved):
        path, synth = saved
        loaded = load_great_synthesizer(path, verify=True)
        expected = synth.sample(6, seed=2)
        assert loaded.sample(6, seed=2) == expected
