"""Unit tests for repro.stats.tests (KS, chi-square, Fisher's exact)."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings, strategies as st

from repro.stats.tests import (
    TestResult as StatTestResult,
    chi_square_p_value,
    chi_square_test,
    fisher_exact_test,
    ks_two_sample_test,
)


class TestKsTwoSample:
    def test_identical_samples_high_p_value(self):
        sample = list(np.linspace(0, 1, 100))
        result = ks_two_sample_test(sample, sample)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value > 0.99

    def test_disjoint_samples_low_p_value(self):
        result = ks_two_sample_test(list(range(100)), list(range(1000, 1100)))
        assert result.statistic == pytest.approx(1.0)
        assert result.p_value < 1e-6

    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=80)
        b = rng.normal(loc=0.5, size=60)
        ours = ks_two_sample_test(a, b)
        theirs = scipy.stats.ks_2samp(a, b)
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-12)

    def test_p_value_close_to_scipy_asymptotic(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=200)
        b = rng.normal(loc=0.3, size=200)
        ours = ks_two_sample_test(a, b)
        theirs = scipy.stats.ks_2samp(a, b, method="asymp")
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=0.02)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample_test([], [1.0])

    def test_result_significance_helper(self):
        result = StatTestResult(statistic=1.0, p_value=0.01, test_name="x")
        assert result.significant(alpha=0.05)
        assert not result.significant(alpha=0.001)


class TestChiSquare:
    def test_p_value_matches_scipy_sf(self):
        for stat, dof in [(3.2, 2), (10.5, 4), (0.7, 1), (25.0, 9)]:
            assert chi_square_p_value(stat, dof) == pytest.approx(
                scipy.stats.chi2.sf(stat, dof), rel=1e-6, abs=1e-9
            )

    def test_independence_test_matches_scipy(self):
        contingency = np.array([[10, 20, 30], [20, 15, 5]], dtype=float)
        ours = chi_square_test(contingency)
        chi2, p, _, _ = scipy.stats.chi2_contingency(contingency, correction=False)
        assert ours.statistic == pytest.approx(chi2)
        assert ours.p_value == pytest.approx(p, rel=1e-6)

    def test_independent_table_high_p(self):
        contingency = np.array([[25, 25], [25, 25]], dtype=float)
        assert chi_square_test(contingency).p_value > 0.99

    def test_zero_statistic_p_is_one(self):
        assert chi_square_p_value(0.0, 3) == 1.0

    def test_invalid_dof_rejected(self):
        with pytest.raises(ValueError):
            chi_square_p_value(1.0, 0)

    def test_too_small_table_rejected(self):
        with pytest.raises(ValueError):
            chi_square_test(np.array([[1, 2]]))

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            chi_square_test(np.zeros((2, 2)))


class TestFisherExact:
    def test_matches_scipy_two_sided(self):
        for table in ([[8, 2], [1, 5]], [[3, 7], [6, 4]], [[10, 0], [0, 10]]):
            ours = fisher_exact_test(np.array(table, dtype=float))
            odds, p = scipy.stats.fisher_exact(table, alternative="two-sided")
            assert ours.p_value == pytest.approx(p, rel=1e-9, abs=1e-12)

    def test_odds_ratio(self):
        result = fisher_exact_test(np.array([[8, 2], [1, 5]], dtype=float))
        assert result.statistic == pytest.approx((8 * 5) / (2 * 1))

    def test_requires_2x2(self):
        with pytest.raises(ValueError):
            fisher_exact_test(np.zeros((2, 3)))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            fisher_exact_test(np.array([[1, -1], [2, 3]], dtype=float))

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            fisher_exact_test(np.zeros((2, 2)))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(-50, 50), min_size=3, max_size=60),
    st.lists(st.floats(-50, 50), min_size=3, max_size=60),
)
def test_ks_p_value_in_unit_interval_property(a, b):
    """Property: the KS p-value always lies in [0, 1] and the statistic in [0, 1]."""
    result = ks_two_sample_test(a, b)
    assert 0.0 <= result.p_value <= 1.0
    assert 0.0 <= result.statistic <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
def test_fisher_p_value_in_unit_interval_property(a, b, c, d):
    """Property: Fisher's exact p-value lies in (0, 1] for any non-empty 2x2 table."""
    if a + b + c + d == 0:
        return
    result = fisher_exact_test(np.array([[a, b], [c, d]], dtype=float))
    assert 0.0 < result.p_value <= 1.0 + 1e-12
