"""Tests for the artifact registry: CAS, provenance runs, dedup, migrations."""

import json
import os
import pickle
import zipfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.connecting.connector import ConnectorConfig
from repro.datasets.relational import RetailConfig, generate_retail_like
from repro.enhancement.enhancer import EnhancerConfig
from repro.frame.io import write_csv
from repro.frame.table import Table
from repro.great.synthesizer import GReaTConfig, GReaTSynthesizer
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig
from repro.llm.sampler import SamplerConfig
from repro.pipelines.config import PipelineConfig
from repro.pipelines.greater import GReaTERPipeline
from repro.pipelines.multitable import MultiTablePipelineConfig, MultiTableSchemaPipeline
from repro.registry import (
    ContentStore,
    Migration,
    Registry,
    RegistrySource,
    blob_digest,
    downgrade_bundle_to_v0,
    fingerprint_directory,
    fingerprint_table,
    fit_spec,
    migrate_bundle,
    register_migration,
    spec_digest,
)
from repro.registry.migrations import _MIGRATIONS
from repro.store import StoreError
from repro.store.bundle import BundleIntegrityError, load_bundle
from repro.store.bundle import save_great_synthesizer


def _great_config(engine: str, seed: int = 3) -> GReaTConfig:
    return GReaTConfig(
        fine_tune=FineTuneConfig(epochs=2, batches=2, seed=seed,
                                 model=ModelConfig(order=3), engine=engine),
        sampler=SamplerConfig(temperature=0.9, top_k=8, seed=seed, engine=engine),
        seed=seed,
    )


@pytest.fixture
def training_table():
    return Table({
        "name": ["grace", "yin", "anson", "maya"] * 6,
        "lunch": [1, 2, 1, 3] * 6,
        "score": [0.5, 1.5, 0.5, 2.5] * 6,
    })


class _GreatPipeline:
    """Minimal pipeline protocol (name/config/fit) over a GReaT synthesizer."""

    name = "great-test"

    def __init__(self, config: GReaTConfig):
        self.config = config

    def fit(self, table: Table) -> GReaTSynthesizer:
        return GReaTSynthesizer(self.config).fit(table)


def _pipeline_config(engine: str = "object", seed: int = 0) -> PipelineConfig:
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="none", seed=seed),
        connector=ConnectorConfig(remove_noisy_columns=False),
        generation_engine=engine,
        training_engine=engine,
    )


# ---------------------------------------------------------------------------
# content-addressed store
# ---------------------------------------------------------------------------

class TestContentStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ContentStore(tmp_path / "objects")
        digest, written = store.put(b"hello parts")
        assert written
        assert digest == blob_digest(b"hello parts")
        assert store.get(digest) == b"hello parts"
        assert store.has(digest)
        assert store.size(digest) == len(b"hello parts")

    def test_put_is_idempotent(self, tmp_path):
        store = ContentStore(tmp_path / "objects")
        first, written_first = store.put(b"same bytes")
        second, written_second = store.put(b"same bytes")
        assert first == second
        assert written_first and not written_second
        assert len(store.digests()) == 1

    def test_corrupted_object_raises_integrity_error(self, tmp_path):
        store = ContentStore(tmp_path / "objects")
        digest, _ = store.put(b"pristine")
        store.object_path(digest).write_bytes(b"tampered")
        with pytest.raises(BundleIntegrityError):
            store.get(digest)

    def test_missing_object_and_bad_digest_rejected(self, tmp_path):
        store = ContentStore(tmp_path / "objects")
        with pytest.raises(StoreError):
            store.get("0" * 64)
        with pytest.raises(StoreError):
            store.object_path("ab")

    def test_delete_frees_bytes_and_fanout_dir(self, tmp_path):
        store = ContentStore(tmp_path / "objects")
        digest, _ = store.put(b"doomed")
        assert store.delete(digest) == len(b"doomed")
        assert not store.has(digest)
        assert store.delete(digest) == 0
        assert store.digests() == []

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(blobs=st.lists(st.binary(min_size=0, max_size=64), max_size=12))
    def test_store_accounting_matches_unique_contents(self, tmp_path, blobs):
        store = ContentStore(tmp_path / "objects" / str(len(blobs)))
        for shard in (store.root.iterdir() if store.root.is_dir() else []):
            for entry in shard.iterdir():
                entry.unlink()
        written = sum(1 for blob in blobs if store.put(blob)[1])
        unique = {blob_digest(blob): blob for blob in blobs}
        assert written == len(unique)
        assert set(store.digests()) == set(unique)
        assert store.total_bytes() == sum(len(blob) for blob in unique.values())
        for digest, blob in unique.items():
            assert store.get(digest) == blob

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(keep=st.integers(min_value=0, max_value=5))
    def test_gc_deletes_exactly_the_unreferenced(self, tmp_path, keep):
        registry = Registry(tmp_path / ("reg%d" % keep))
        blobs = [("blob %d" % i).encode() for i in range(6)]
        for blob in blobs:
            registry.store.put(blob)
        # fabricate artifact records referencing the first `keep` objects
        registry._artifacts.mkdir(parents=True, exist_ok=True)
        for i in range(keep):
            digest = blob_digest(blobs[i])
            record = {"format_version": 1, "kind": "great_synthesizer",
                      "digest": "f" * 63 + str(i), "compress": False, "meta": {},
                      "parts": {"part": {"object": digest, "size": len(blobs[i])}}}
            (registry._artifacts / (record["digest"] + ".json")).write_text(
                json.dumps(record))
        stats = registry.gc()
        assert stats["objects_deleted"] == 6 - keep
        assert stats["objects_kept"] == keep
        assert stats["bytes_freed"] == sum(len(blob) for blob in blobs[keep:])
        assert set(registry.store.digests()) == {blob_digest(b) for b in blobs[:keep]}


# ---------------------------------------------------------------------------
# registry save/load, dedup, incremental re-save
# ---------------------------------------------------------------------------

class TestRegistrySaveLoad:
    @pytest.fixture(scope="class")
    def fitted(self):
        table = Table({
            "name": ["grace", "yin", "anson", "maya"] * 6,
            "lunch": [1, 2, 1, 3] * 6,
            "score": [0.5, 1.5, 0.5, 2.5] * 6,
        })
        return GReaTSynthesizer(_great_config("compiled")).fit(table), table

    def test_registry_digest_matches_bundle_file_digest(self, fitted, tmp_path):
        synth, _ = fitted
        report = Registry(tmp_path / "reg").save(synth)
        file_digest = save_great_synthesizer(synth, tmp_path / "bundle")
        assert report.digest == file_digest
        assert report.kind == "great_synthesizer"

    def test_load_round_trips_samples(self, fitted, tmp_path):
        synth, _ = fitted
        registry = Registry(tmp_path / "reg")
        digest = registry.save(synth).digest
        loaded = registry.load(digest)
        assert fingerprint_table(loaded.sample(8, seed=5)) == \
            fingerprint_table(synth.sample(8, seed=5))

    def test_mmap_load_round_trips_samples(self, fitted, tmp_path):
        synth, _ = fitted
        registry = Registry(tmp_path / "reg")
        digest = registry.save(synth).digest
        loaded = registry.load(digest, mmap=True)
        assert fingerprint_table(loaded.sample(8, seed=5)) == \
            fingerprint_table(synth.sample(8, seed=5))

    def test_resave_is_incremental(self, fitted, tmp_path):
        synth, _ = fitted
        registry = Registry(tmp_path / "reg")
        first = registry.save(synth)
        second = registry.save(synth)
        assert first.parts_written > 0
        assert second.parts_written == 0
        assert second.parts_reused == len(second.parts)
        assert second.bytes_written == 0
        assert second.digest == first.digest

    def test_prefix_resolution(self, fitted, tmp_path):
        synth, _ = fitted
        registry = Registry(tmp_path / "reg")
        digest = registry.save(synth).digest
        assert registry.resolve(digest[:10]) == digest
        with pytest.raises(StoreError):
            registry.resolve("zzzz")

    def test_remove_then_gc_reclaims_objects(self, fitted, tmp_path):
        synth, _ = fitted
        registry = Registry(tmp_path / "reg")
        digest = registry.save(synth).digest
        assert registry.gc()["objects_deleted"] == 0
        assert registry.remove(digest) >= 1
        stats = registry.gc()
        assert stats["objects_deleted"] > 0
        assert stats["objects_kept"] == 0
        assert registry.store.digests() == []

    def test_corrupted_object_fails_verified_load(self, fitted, tmp_path):
        synth, _ = fitted
        registry = Registry(tmp_path / "reg")
        report = registry.save(synth)
        victim = sorted(report.parts.values())[0]
        blob = registry.store.object_path(victim).read_bytes()
        registry.store.object_path(victim).write_bytes(
            bytes([blob[0] ^ 0xFF]) + blob[1:])
        with pytest.raises(BundleIntegrityError):
            registry.load(report.digest)


class TestMultitableDedup:
    @pytest.fixture(scope="class")
    def retail(self):
        return generate_retail_like(RetailConfig(
            n_customers=6, n_stores=2, max_orders_per_customer=2,
            max_items_per_order=2, max_reviews_per_customer=1, seed=4))

    def test_edge_synthesizers_share_physical_parts(self, retail, tmp_path):
        pipeline = MultiTableSchemaPipeline(MultiTablePipelineConfig(
            seed=2, generation_engine="compiled", training_engine="compiled"))
        report = Registry(tmp_path / "reg").save(pipeline.fit(retail))
        assert report.kind == "multitable_pipeline"
        assert report.shared, "expected at least one deduplicated part"
        logical = report.total_bytes
        physical = report.bytes_written
        assert physical < logical
        shared_names = [name for names in report.shared.values() for name in names]
        assert len(shared_names) == len(set(shared_names))

    def test_fit_or_load_handles_table_dicts(self, retail, tmp_path):
        pipeline = MultiTableSchemaPipeline(MultiTablePipelineConfig(
            seed=2, generation_engine="compiled", training_engine="compiled"))
        registry = Registry(tmp_path / "reg")
        miss = registry.fit_or_load(pipeline, retail, None)
        hit = registry.fit_or_load(pipeline, retail, None)
        assert not miss.cache_hit and hit.cache_hit
        assert miss.digest == hit.digest
        fresh = miss.fitted.sample_database(seed=9)
        cached = hit.fitted.sample_database(seed=9)
        assert sorted(fresh) == sorted(cached)
        for name in fresh:
            assert fingerprint_table(fresh[name]) == fingerprint_table(cached[name])


# ---------------------------------------------------------------------------
# fit-as-cache-hit and spec sensitivity
# ---------------------------------------------------------------------------

class TestFitOrLoad:
    @pytest.mark.parametrize("engine", ["object", "compiled"])
    def test_cache_hit_is_bit_identical(self, training_table, tmp_path, engine):
        registry = Registry(tmp_path / "reg")
        pipeline = _GreatPipeline(_great_config(engine))
        miss = registry.fit_or_load(pipeline, training_table)
        assert not miss.cache_hit
        assert miss.report is not None and miss.report.parts_written > 0
        hit = registry.fit_or_load(pipeline, training_table)
        assert hit.cache_hit
        assert hit.report is None
        assert hit.digest == miss.digest
        assert hit.spec_digest == miss.spec_digest
        assert fingerprint_table(hit.fitted.sample(10, seed=7)) == \
            fingerprint_table(miss.fitted.sample(10, seed=7))

    def test_seed_change_is_a_miss(self, training_table, tmp_path):
        registry = Registry(tmp_path / "reg")
        first = registry.fit_or_load(_GreatPipeline(_great_config("compiled", seed=3)),
                                     training_table)
        second = registry.fit_or_load(_GreatPipeline(_great_config("compiled", seed=4)),
                                      training_table)
        assert not second.cache_hit
        assert second.spec_digest != first.spec_digest

    def test_dataset_change_is_a_miss(self, training_table, tmp_path):
        registry = Registry(tmp_path / "reg")
        pipeline = _GreatPipeline(_great_config("compiled"))
        registry.fit_or_load(pipeline, training_table)
        changed = Table({name: list(training_table.column(name).values)
                         for name in training_table.column_names})
        changed = Table({**{name: changed.column(name).values
                            for name in changed.column_names},
                         "score": [v + 1 for v in changed.column("score").values]})
        result = registry.fit_or_load(pipeline, changed)
        assert not result.cache_hit

    def test_engine_change_is_a_miss(self, training_table, tmp_path):
        registry = Registry(tmp_path / "reg")
        spec_object = spec_digest(fit_spec(_GreatPipeline(_great_config("object")),
                                           training_table))
        spec_compiled = spec_digest(fit_spec(_GreatPipeline(_great_config("compiled")),
                                             training_table))
        assert spec_object != spec_compiled

    def test_env_engine_override_changes_spec(self, training_table, monkeypatch):
        pipeline = _GreatPipeline(_great_config("auto"))
        monkeypatch.delenv("REPRO_GENERATION_ENGINE", raising=False)
        monkeypatch.delenv("REPRO_TRAINING_ENGINE", raising=False)
        default = spec_digest(fit_spec(pipeline, training_table))
        monkeypatch.setenv("REPRO_GENERATION_ENGINE", "object")
        monkeypatch.setenv("REPRO_TRAINING_ENGINE", "object")
        assert spec_digest(fit_spec(pipeline, training_table)) != default

    def test_pruned_artifact_triggers_refit(self, training_table, tmp_path):
        registry = Registry(tmp_path / "reg")
        pipeline = _GreatPipeline(_great_config("compiled"))
        miss = registry.fit_or_load(pipeline, training_table)
        (registry._artifacts / (miss.digest + ".json")).unlink()
        registry.gc()
        again = registry.fit_or_load(pipeline, training_table)
        assert not again.cache_hit
        assert again.digest == miss.digest

    def test_run_record_binds_spec_to_artifact(self, training_table, tmp_path):
        registry = Registry(tmp_path / "reg")
        pipeline = _GreatPipeline(_great_config("compiled"))
        result = registry.fit_or_load(pipeline, training_table)
        record = registry.run_record(result.spec_digest)
        assert record is not None
        assert record["artifact"] == result.digest
        assert record["pipeline"] == "great-test"
        assert record["spec"]["dataset"] == [fingerprint_table(training_table)]

    def test_full_pipeline_fit_or_load(self, tiny_digix, tmp_path):
        trial = tiny_digix.trials()[0]
        registry = Registry(tmp_path / "reg")
        pipeline = GReaTERPipeline(_pipeline_config("compiled"))
        miss = registry.fit_or_load(pipeline, trial.ads, trial.feeds)
        hit = registry.fit_or_load(pipeline, trial.ads, trial.feeds)
        assert not miss.cache_hit and hit.cache_hit
        assert hit.digest == miss.digest
        fresh = miss.fitted.sample(6, seed=2).synthetic_flat
        cached = hit.fitted.sample(6, seed=2).synthetic_flat
        assert fingerprint_table(fresh) == fingerprint_table(cached)


# ---------------------------------------------------------------------------
# migrations
# ---------------------------------------------------------------------------

class TestMigrations:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        table = Table({
            "name": ["grace", "yin", "anson", "maya"] * 6,
            "lunch": [1, 2, 1, 3] * 6,
            "score": [0.5, 1.5, 0.5, 2.5] * 6,
        })
        synth = GReaTSynthesizer(_great_config("compiled")).fit(table)
        path = tmp_path_factory.mktemp("migrate") / "bundle"
        save_great_synthesizer(synth, path)
        return path, synth

    def test_downgraded_bundle_loads_transparently(self, bundle, tmp_path):
        path, synth = bundle
        old = tmp_path / "v0"
        downgrade_bundle_to_v0(path, old)
        with zipfile.ZipFile(old) as archive:
            manifest = json.loads(archive.read("manifest.json"))
        assert manifest["format_version"] == 0
        assert any(name.endswith("vocabulary.json") for name in manifest["parts"])
        loaded = load_bundle(old)
        assert fingerprint_table(loaded.sample(8, seed=5)) == \
            fingerprint_table(synth.sample(8, seed=5))

    def test_migrate_round_trip_is_byte_identical(self, bundle, tmp_path):
        path, _ = bundle
        old = tmp_path / "v0"
        downgrade_bundle_to_v0(path, old)
        result = migrate_bundle(old, out=tmp_path / "v1")
        assert result["from_version"] == 0
        assert result["to_version"] == 1
        assert result["changed"]
        assert (tmp_path / "v1").read_bytes() == path.read_bytes()

    def test_migrate_in_place_preserves_digest(self, bundle, tmp_path):
        path, _ = bundle
        old = tmp_path / "v0"
        downgrade_bundle_to_v0(path, old)
        result = migrate_bundle(old)
        assert result["path"] == str(old)
        assert old.read_bytes() == path.read_bytes()
        with zipfile.ZipFile(path) as archive:
            manifest = json.loads(archive.read("manifest.json"))
        assert result["digest"] == manifest["digest"]

    def test_current_bundle_is_a_noop(self, bundle):
        path, _ = bundle
        before = path.read_bytes()
        result = migrate_bundle(path)
        assert not result["changed"]
        assert path.read_bytes() == before

    def test_registry_migrates_legacy_artifacts_on_read(self, bundle, tmp_path):
        path, synth = bundle
        old = tmp_path / "v0"
        downgrade_bundle_to_v0(path, old)
        registry = Registry(tmp_path / "reg")
        # store the v0 parts as a legacy artifact record
        with zipfile.ZipFile(old) as archive:
            parts = {name: archive.read(name) for name in archive.namelist()
                     if name != "manifest.json"}
            manifest = json.loads(archive.read("manifest.json"))
        entries = {}
        for name, blob in parts.items():
            digest, _ = registry.store.put(blob)
            entries[name] = {"object": digest, "size": len(blob)}
        record = {"format_version": 0, "kind": manifest["kind"],
                  "digest": manifest["digest"], "compress": manifest["compress"],
                  "meta": manifest["meta"], "parts": entries}
        registry._artifacts.mkdir(parents=True, exist_ok=True)
        (registry._artifacts / (manifest["digest"] + ".json")).write_text(
            json.dumps(record))
        loaded = registry.load(manifest["digest"])
        assert fingerprint_table(loaded.sample(8, seed=5)) == \
            fingerprint_table(synth.sample(8, seed=5))

    def test_version_gap_without_migration_rejected(self, bundle, tmp_path):
        from repro.registry.migrations import apply_migrations

        manifest = {"format_version": -1, "kind": "martian", "compress": False,
                    "meta": {}, "parts": {}, "digest": ""}
        with pytest.raises(StoreError):
            apply_migrations(manifest, {})

    def test_non_increasing_migration_rejected(self):
        with pytest.raises(StoreError):
            register_migration(Migration(
                name="backwards", from_version=1, to_version=1,
                selector=lambda manifest: True,
                apply=lambda manifest, parts: (manifest, parts)))
        assert all(m.name != "backwards" for m in _MIGRATIONS)


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------

class TestFingerprints:
    def test_table_fingerprint_is_deterministic(self, small_table):
        clone = Table({name: list(small_table.column(name).values)
                       for name in small_table.column_names})
        assert fingerprint_table(small_table) == fingerprint_table(clone)

    def test_table_fingerprint_sees_value_changes(self, small_table):
        changed = Table({**{name: small_table.column(name).values
                            for name in small_table.column_names},
                         "age": [25, 31, 25, 41]})
        assert fingerprint_table(small_table) != fingerprint_table(changed)

    def test_directory_fingerprint_covers_csvs(self, small_table, tmp_path):
        write_csv(small_table, tmp_path / "a.csv")
        write_csv(small_table, tmp_path / "b.csv")
        result = fingerprint_directory(tmp_path)
        assert sorted(result["files"]) == ["a.csv", "b.csv"]
        assert result["files"]["a.csv"] == result["files"]["b.csv"]
        (tmp_path / "b.csv").write_text((tmp_path / "b.csv").read_text() + "x,1,2,y\n")
        assert fingerprint_directory(tmp_path)["fingerprint"] != result["fingerprint"]


# ---------------------------------------------------------------------------
# serving references
# ---------------------------------------------------------------------------

class TestRegistrySource:
    def test_pickles_and_prints(self):
        source = RegistrySource(root="/tmp/reg", digest="a" * 64)
        clone = pickle.loads(pickle.dumps(source))
        assert clone == source
        assert str(source) == "/tmp/reg#" + "a" * 12
