"""Fault-injection tests: every failure path the resilience layer owns.

The properties under test mirror the failure model (see the README's
"Failure model & operations"):

* fault plans parse deterministically and fire on exact hit numbers;
* a worker crash mid-batch costs retries, not the request: with retries on,
  a scripted crash storm completes with zero client-visible failures and a
  table bit-identical to the fault-free run;
* a wedged task misses its ``timeout_s`` deadline, fails with
  :class:`DeadlineExceeded` (HTTP 503, ``type: deadline``), and the worker
  holding it is killed and respawned;
* a crash loop trips the breaker: ``submit`` raises :class:`PoolDegraded`,
  the service falls back to serial sampling (or fails fast, per config),
  ``/readyz`` reports it, and the half-open probe closes the breaker again;
* a draining server refuses new work with 503 + ``Retry-After`` while
  in-flight requests finish, and SIGTERM drives that drain end to end;
* an interrupted ``iter_sample_database`` spill resumed with ``resume=True``
  produces byte-identical part files to an uninterrupted spill, on both
  engines, across one or two interruptions;
* a dropped stream surfaces as :class:`IncompleteStream`, malformed HTTP
  is answered 400 and counted, a truncated bundle read raises
  :class:`StoreError`, and a failing sink raises ``OSError`` mid-spill.
"""

import asyncio
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro import faults
from repro.connecting.connector import ConnectorConfig
from repro.enhancement.enhancer import EnhancerConfig
from repro.frame.table import Table
from repro.pipelines.config import PipelineConfig
from repro.pipelines.greater import GReaTERPipeline
from repro.pipelines.multitable import MultiTablePipelineConfig, MultiTableSchemaPipeline
from repro.serving import (
    DeadlineExceeded,
    PoolDegraded,
    ServingConfig,
    ServingError,
    SynthesisServer,
    SynthesisService,
    WorkerPool,
    request_json,
)
from repro.serving.server import IncompleteStream, request_json_stream
from repro.store.bundle import BundleReader, StoreError, load_fitted_pipeline
from repro.store.stream import CsvTableSink, PartTableSink, part_table_is_complete


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------

def _config(seed=0, engine="compiled"):
    return PipelineConfig(
        seed=seed,
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="understandability", seed=seed),
        connector=ConnectorConfig(remove_noisy_columns=False),
        generation_engine=engine,
        training_engine=engine,
    )


@pytest.fixture(scope="module")
def bundle(tiny_digix, tmp_path_factory):
    trial = tiny_digix.trials()[0]
    fitted = GReaTERPipeline(_config()).fit(trial.ads, trial.feeds)
    path = tmp_path_factory.mktemp("bundles") / "greater"
    fitted.save(path)
    return path


@pytest.fixture(scope="module")
def database_tables():
    return {
        "users": Table({
            "user_id": ["u{}".format(i) for i in range(12)],
            "city": ["a", "b", "c", "a", "b", "c", "a", "b", "c", "a", "b", "c"],
        }),
        "orders": Table({
            "order_id": ["o{}".format(i) for i in range(24)],
            "user_id": ["u{}".format(i % 12) for i in range(24)],
            "amount": [5 * (i % 7) + 3 for i in range(24)],
        }),
    }


@pytest.fixture(scope="module", params=["object", "compiled"])
def multitable_fitted(request, database_tables):
    config = MultiTablePipelineConfig(seed=3, generation_engine=request.param,
                                      training_engine=request.param)
    return MultiTableSchemaPipeline(config).fit(database_tables)


@contextmanager
def _service(path, **overrides):
    config = ServingConfig(**{"cache_bytes": 0, **overrides})
    service = SynthesisService.from_bundle(path, config)
    try:
        yield service
    finally:
        service.close()


@contextmanager
def _running_server(service, max_queue=8):
    """Run a SynthesisServer on a background event loop; yields (server, loop)."""
    server = SynthesisServer(service, max_queue=max_queue)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()
        loop.run_until_complete(server.stop())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "server did not start"
    try:
        yield server, loop
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)


def _raw_request(host, port, method="POST", path="/sample_table", payload=None):
    """Like request_json but also returns the response headers."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = json.dumps(payload or {}).encode("utf-8")
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        raw = response.read().decode("utf-8")
        return response.status, (json.loads(raw) if raw else None), dict(response.getheaders())
    finally:
        connection.close()


def _raw_bytes(host, port, data: bytes) -> bytes:
    """Send raw bytes over a socket; return everything the server answers."""
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(data)
        sock.settimeout(10)
        received = b""
        try:
            while True:
                part = sock.recv(65536)
                if not part:
                    break
                received += part
        except socket.timeout:
            pass
    return received


def _poll(predicate, timeout_s=15.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _dir_bytes(root) -> dict:
    """Every file under *root* as relative-path -> bytes."""
    root = Path(root)
    return {str(path.relative_to(root)): path.read_bytes()
            for path in sorted(root.rglob("*")) if path.is_file()}


# ---------------------------------------------------------------------------
# the fault plan grammar
# ---------------------------------------------------------------------------

class TestFaultPlans:
    def test_parse_at_every_and_arg(self):
        rules = faults.parse_plan("worker_crash%25; task_hang@2,5=30 ;sink_oserror@1")
        assert rules["worker_crash"].every == 25
        assert rules["task_hang"].at == frozenset({2, 5})
        assert rules["task_hang"].arg == 30.0
        assert rules["sink_oserror"].at == frozenset({1})

    @pytest.mark.parametrize("bad", [
        "", "worker_crash", "worker_crash@0", "worker_crash@x",
        "worker_crash%0", "worker_crash%x", "task_hang@1=ten",
        "nonsense@1", "worker_crash@1;worker_crash@2",
    ])
    def test_bad_plans_raise(self, bad):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_plan(bad)

    def test_rules_fire_on_exact_hits(self):
        injector = faults.FaultInjector("sink_oserror@2;stream_drop%3")
        fired = [injector.check("sink_oserror") is not None for _ in range(4)]
        assert fired == [False, True, False, False]
        fired = [injector.check("stream_drop") is not None for _ in range(7)]
        assert fired == [False, False, True, False, False, True, False]
        # unnamed points are never counted and never fire
        assert injector.check("worker_crash") is None
        assert injector.hits("worker_crash") == 0

    def test_armed_context_manager_scopes_the_plan(self):
        assert faults.check("sink_oserror") is None
        with faults.armed("sink_oserror@1"):
            assert faults.check("sink_oserror") is not None
        assert faults.check("sink_oserror") is None

    def test_env_var_arms_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "bundle_truncated@1")
        monkeypatch.setattr(faults, "_injector", None)
        monkeypatch.setattr(faults, "_env_loaded", False)
        try:
            assert faults.check("bundle_truncated") is not None
        finally:
            faults.disarm()

    def test_serving_config_validates_plan_eagerly(self):
        with pytest.raises(ValueError):
            ServingConfig(faults="not_a_point@1")


# ---------------------------------------------------------------------------
# retries: crashes cost retries, not requests
# ---------------------------------------------------------------------------

class TestRetries:
    def test_crash_storm_with_retries_is_bit_identical(self, bundle):
        """The acceptance property: a scripted crash storm over a 4-worker
        pool with retries on completes with zero failures and a table
        bit-identical to the fault-free run."""
        with _service(bundle, shards=1, block_size=1) as serial:
            reference = serial.sample_table(60, seed=11)
        with _service(bundle, shards=4, block_size=1, executor="process",
                      retries=5, retry_backoff_s=0.01, breaker_threshold=0,
                      faults="worker_crash%10") as service:
            table = service.sample_table(60, seed=11)
            stats = service.pool.stats()
        assert table == reference
        assert stats["restarts"] >= 1
        assert stats["tasks_retried"] >= 1
        assert stats["retries_exhausted"] == 0

    def test_without_retries_the_crash_fails_the_request(self, bundle):
        with _service(bundle, shards=2, block_size=1, executor="process",
                      retries=0, breaker_threshold=0,
                      faults="worker_crash@1") as service:
            with pytest.raises(ServingError, match="died"):
                service.sample_table(20, seed=11)

    def test_exhausted_retries_name_the_attempts(self, bundle):
        # every task of every worker life crashes: the budget must run out
        with _service(bundle, shards=1, block_size=1, executor="process",
                      retries=1, retry_backoff_s=0.01, breaker_threshold=0,
                      faults="worker_crash%1") as service:
            with pytest.raises(ServingError, match="after 2 attempts"):
                service.sample_table(2, seed=11)
            assert service.pool.stats()["retries_exhausted"] >= 1


# ---------------------------------------------------------------------------
# deadlines: wedged tasks are killed, not waited on
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_deadline_kills_and_respawns_the_stuck_worker(self, bundle):
        pool = WorkerPool(bundle, workers=1, block_size=4,
                          faults_spec="task_hang@2=30")
        try:
            assert pool.submit("ping", None).result(timeout=30) is None
            task = pool.submit("ping", None, deadline_s=0.4)
            with pytest.raises(DeadlineExceeded, match="deadline"):
                task.result(timeout=30)
            assert pool.stats()["deadline_kills"] >= 1
            # the killed worker respawns (fresh fault counters: hit 2 of the
            # new life is a later task) and keeps serving
            assert _poll(lambda: pool.stats()["dead_workers"] == 0)
            assert _poll(lambda: pool.restarts >= 1)
            assert pool.submit("ping", None).result(timeout=30) is None
        finally:
            pool.close()

    def test_abandoned_result_does_not_leak_the_task(self, bundle):
        """A caller that gives up on ``result(timeout=...)`` must not pin
        the task (and its payload) in the pool registry forever."""
        pool = WorkerPool(bundle, workers=1, block_size=4,
                          faults_spec="task_hang@1=2")
        try:
            task = pool.submit("ping", None)
            with pytest.raises(ServingError, match="timed out"):
                task.result(timeout=0.3)
            assert task.task_id not in pool._tasks
        finally:
            pool.close()

    def test_http_deadline_on_thread_executor_returns_503(self, bundle):
        with _service(bundle) as service:
            with _running_server(service) as (server, _):
                status, body = request_json(
                    server.host, server.port, "POST", "/sample_table",
                    {"n": 50, "timeout_s": 0.0005})
                assert status == 503
                assert body["type"] == "deadline"
                status, stats = request_json(server.host, server.port, "GET", "/stats")
                assert stats["server"]["deadline_errors"] >= 1
                # without a deadline the same request still serves
                status, body = request_json(server.host, server.port,
                                            "POST", "/sample_table", {"n": 4})
                assert status == 200 and len(body["rows"]) > 0

    def test_http_deadline_on_process_pool_returns_503(self, bundle):
        with _service(bundle, executor="process", shards=1,
                      faults="task_hang@2=30") as service:
            with _running_server(service) as (server, _):
                status, first = request_json(server.host, server.port,
                                             "POST", "/sample_table",
                                             {"n": 4, "seed": 5})
                assert status == 200
                status, body = request_json(server.host, server.port,
                                            "POST", "/sample_table",
                                            {"n": 4, "seed": 5, "timeout_s": 0.5})
                assert status == 503
                assert body["type"] == "deadline"
                assert _poll(lambda: service.pool.stats()["dead_workers"] == 0)
                status, again = request_json(server.host, server.port,
                                             "POST", "/sample_table",
                                             {"n": 4, "seed": 5}, timeout=60.0)
                assert status == 200
                assert again == first  # the respawned worker is bit-identical

    def test_invalid_timeout_is_a_400(self, bundle):
        with _service(bundle) as service:
            with _running_server(service) as (server, _):
                for bad in (0, -1, "soon", True):
                    status, body = request_json(server.host, server.port,
                                                "POST", "/sample_table",
                                                {"n": 2, "timeout_s": bad})
                    assert status == 400, bad
                    assert "timeout_s" in body["error"]


# ---------------------------------------------------------------------------
# the crash-loop breaker
# ---------------------------------------------------------------------------

class TestBreaker:
    def test_breaker_trips_and_half_open_probe_recovers(self, bundle):
        pool = WorkerPool(bundle, workers=1, block_size=4, retries=0,
                          breaker_threshold=2, breaker_window_s=30.0,
                          breaker_cooldown_s=0.3)
        try:
            for _ in range(2):
                task = pool.submit("crash", None)
                with pytest.raises(ServingError, match="died"):
                    task.result(timeout=30)
            assert pool.degraded
            assert pool.stats()["breaker_trips"] >= 1
            with pytest.raises(PoolDegraded, match="breaker"):
                pool.submit("ping", None)
            # after the cooldown the half-open probe respawn cold-starts
            # cleanly and closes the breaker
            assert _poll(lambda: pool.breaker_state == "closed")
            assert pool.submit("ping", None).result(timeout=30) is None
        finally:
            pool.close()

    def test_degraded_service_falls_back_to_serial(self, bundle):
        with _service(bundle, shards=1, block_size=4) as serial:
            reference = serial.sample_table(8, seed=5)
        with _service(bundle, executor="process", shards=1, block_size=4,
                      retries=0, breaker_threshold=1,
                      breaker_cooldown_s=60.0) as service:
            task = service.pool.submit("crash", None)
            with pytest.raises(ServingError):
                task.result(timeout=30)
            assert _poll(lambda: service.pool.degraded)
            assert service.sample_table(8, seed=5) == reference
            assert service.stats()["degraded_fallbacks"] >= 1
            ready, info = service.readiness()
            assert ready  # serial fallback still serves
            assert "degraded" in info.get("reason", "")

    def test_fail_fast_mode_raises_pool_degraded(self, bundle):
        with _service(bundle, executor="process", shards=1, block_size=4,
                      retries=0, breaker_threshold=1, breaker_cooldown_s=60.0,
                      degraded_mode="fail_fast") as service:
            task = service.pool.submit("crash", None)
            with pytest.raises(ServingError):
                task.result(timeout=30)
            assert _poll(lambda: service.pool.degraded)
            with pytest.raises(PoolDegraded):
                service.sample_table(8, seed=5)
            ready, _ = service.readiness()
            assert not ready

    def test_readyz_reflects_degradation(self, bundle):
        with _service(bundle, executor="process", shards=1, block_size=4,
                      retries=0, breaker_threshold=1, breaker_cooldown_s=60.0,
                      degraded_mode="fail_fast") as service:
            with _running_server(service) as (server, _):
                status, body = request_json(server.host, server.port, "GET", "/readyz")
                assert status == 200 and body["ready"]
                task = service.pool.submit("crash", None)
                with pytest.raises(ServingError):
                    task.result(timeout=30)
                assert _poll(lambda: service.pool.degraded)
                status, body, headers = _raw_request(server.host, server.port,
                                                     "GET", "/readyz")
                assert status == 503 and not body["ready"]
                assert "Retry-After" in headers
                # liveness is not readiness: /healthz stays 200
                status, _ = request_json(server.host, server.port, "GET", "/healthz")
                assert status == 200


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------

class TestDrain:
    def test_draining_server_rejects_with_retry_after(self, bundle):
        with _service(bundle) as service:
            with _running_server(service) as (server, loop):
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=1) as pool:
                    slow = pool.submit(request_json, server.host, server.port,
                                       "POST", "/sample_table", {"n": 40}, 120.0)
                    assert _poll(lambda: server.stats()["server"]["in_flight"] >= 1)
                    server.begin_drain()
                    status, body, headers = _raw_request(server.host, server.port)
                    assert status == 503
                    assert "draining" in body["error"]
                    assert headers.get("Retry-After")
                    # streamed requests are refused the same way
                    status, body = request_json_stream(server.host, server.port,
                                                       {"n": 4})
                    assert status == 503
                    # readiness flips, stats/health stay up for observers
                    status, ready = request_json(server.host, server.port,
                                                 "GET", "/readyz")
                    assert status == 503 and ready["reason"] == "draining"
                    assert request_json(server.host, server.port,
                                        "GET", "/healthz")[0] == 200
                    # the in-flight request still completes
                    status, body = slow.result(timeout=120)
                    assert status == 200 and len(body["rows"]) > 0
                drained = asyncio.run_coroutine_threadsafe(
                    server.drain(10.0), loop).result(timeout=30)
                assert drained
                assert server.stats()["server"]["draining"]

    def test_sigterm_drains_and_exits_cleanly(self, bundle, tmp_path):
        ready_file = tmp_path / "ready"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--bundle", str(bundle),
             "--ready-file", str(ready_file), "--max-seconds", "120",
             "--drain-timeout-s", "10", "--json"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            assert _poll(ready_file.exists, timeout_s=60.0)
            host, port = ready_file.read_text().split()
            status, _ = request_json(host, int(port), "POST", "/sample_table", {"n": 2})
            assert status == 200
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        except Exception:
            process.kill()
            raise
        assert process.returncode == 0, stderr
        assert "drain complete" in stderr
        rows = json.loads(stdout)
        assert rows[0]["table_requests"] == 1


# ---------------------------------------------------------------------------
# stream drops and malformed HTTP
# ---------------------------------------------------------------------------

class TestStreamAndParsing:
    def test_stream_drop_raises_incomplete_stream(self, bundle):
        with _service(bundle, block_size=2) as service:
            with _running_server(service) as (server, _):
                with faults.armed("stream_drop@2"):
                    with pytest.raises(IncompleteStream) as excinfo:
                        request_json_stream(server.host, server.port, {"n": 10})
                assert len(excinfo.value.lines) == 2
                assert not any("done" in line for line in excinfo.value.lines)
                # and without the fault the same request completes
                status, lines = request_json_stream(server.host, server.port,
                                                    {"n": 10})
                assert status == 200 and lines[-1]["done"]

    @pytest.mark.parametrize("head", [
        # duplicate Content-Length: the request-smuggling classic
        b"POST /sample_table HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}",
        b"POST /sample_table HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"POST /sample_table HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n",  # oversized start line
        b"NOT-A-REQUEST-LINE\r\n\r\n",
    ])
    def test_malformed_requests_get_400_and_are_counted(self, bundle, head):
        with _service(bundle) as service:
            with _running_server(service) as (server, _):
                answer = _raw_bytes(server.host, server.port, head)
                assert answer.startswith(b"HTTP/1.1 400 ")
                assert b"malformed request" in answer
                status, stats = request_json(server.host, server.port, "GET", "/stats")
                assert stats["server"]["malformed_requests"] == 1


# ---------------------------------------------------------------------------
# storage faults
# ---------------------------------------------------------------------------

class TestStorageFaults:
    def test_sink_oserror_aborts_without_a_torn_file(self, tmp_path):
        chunk = Table({"a": [1, 2], "b": ["x", "y"]})
        destination = tmp_path / "out.csv"
        with faults.armed("sink_oserror@2"):
            with pytest.raises(OSError, match="injected sink failure"):
                with CsvTableSink(destination) as sink:
                    sink.write(chunk)
                    sink.write(chunk)
        assert not destination.exists()  # publish-on-close means no torn file

    def test_bundle_truncated_injection_and_real_truncation(self, bundle, tmp_path):
        with faults.armed("bundle_truncated@1"):
            with pytest.raises(StoreError, match="injected truncated bundle"):
                BundleReader(bundle)
        torn = tmp_path / "torn-bundle"
        data = Path(bundle).read_bytes()
        torn.write_bytes(data[:len(data) // 2])
        with pytest.raises(StoreError):
            load_fitted_pipeline(torn)


# ---------------------------------------------------------------------------
# resumable spills
# ---------------------------------------------------------------------------

class TestSpillResume:
    def _chunks(self):
        return [Table({"k": [3 * i, 3 * i + 1, 3 * i + 2],
                       "v": ["a", "b", "c"]}) for i in range(3)]

    def test_part_sink_resume_is_byte_identical(self, tmp_path):
        reference = tmp_path / "reference"
        with PartTableSink(reference) as sink:
            sink.write_all(iter(self._chunks()))
        interrupted = tmp_path / "interrupted"
        sink = PartTableSink(interrupted)
        for chunk in self._chunks()[:2]:
            sink.write(chunk)  # crash here: two parts on disk, no manifest
        assert not part_table_is_complete(interrupted)
        resumed = PartTableSink(interrupted, resume=True)
        assert resumed.resumed_chunks == 2
        with resumed:
            resumed.write_all(iter(self._chunks()))  # producer replays all chunks
        assert part_table_is_complete(interrupted)
        assert _dir_bytes(interrupted) == _dir_bytes(reference)

    def test_part_sink_resume_discards_the_torn_suffix(self, tmp_path):
        reference = tmp_path / "reference"
        with PartTableSink(reference) as sink:
            sink.write_all(iter(self._chunks()))
        interrupted = tmp_path / "interrupted"
        sink = PartTableSink(interrupted)
        for chunk in self._chunks():
            sink.write(chunk)
        # tear the last part mid-write and leave a stray behind it
        part = interrupted / "part-00002.npz"
        part.write_bytes(part.read_bytes()[:10])
        (interrupted / "part-00003.npz").write_bytes(b"garbage")
        resumed = PartTableSink(interrupted, resume=True)
        assert resumed.resumed_chunks == 2
        assert not (interrupted / "part-00003.npz").exists()
        with resumed:
            resumed.write_all(iter(self._chunks()))
        assert _dir_bytes(interrupted) == _dir_bytes(reference)

    def test_part_sink_resume_rejects_a_diverging_replay(self, tmp_path):
        interrupted = tmp_path / "interrupted"
        sink = PartTableSink(interrupted)
        sink.write(self._chunks()[0])
        resumed = PartTableSink(interrupted, resume=True)
        with pytest.raises(StoreError, match="not replaying"):
            resumed.write(Table({"k": [1], "v": ["z"]}))

    def test_resume_requires_a_spool(self, multitable_fitted):
        with pytest.raises(ValueError, match="spool"):
            next(multitable_fitted.iter_sample_database(seed=5, resume=True))

    @pytest.mark.parametrize("interruptions", [1, 2])
    def test_database_spill_resume_is_byte_identical(self, multitable_fitted,
                                                     tmp_path, interruptions):
        """The acceptance property on both engines: an interrupted database
        spill resumed with ``resume=True`` produces byte-identical NPZ parts
        (and identical tables) to an uninterrupted spill."""
        reference_spool = tmp_path / "reference"
        reference = dict(multitable_fitted.iter_sample_database(
            seed=5, spool=reference_spool))

        spool = tmp_path / "interrupted"
        for stop_after in range(interruptions):
            iterator = multitable_fitted.iter_sample_database(
                seed=5, spool=spool, resume=stop_after > 0)
            for _ in range(stop_after):
                next(iterator)
            if stop_after > 0:
                next(iterator)  # make the second pass reach a later table
            iterator.close()
            # simulate a crash mid-write of the next table: torn, manifest-less
            torn = spool / "orders" if not part_table_is_complete(spool / "orders") \
                else spool / "users"
            if not part_table_is_complete(torn):
                torn.mkdir(parents=True, exist_ok=True)
                (torn / "part-00000.npz").write_bytes(b"torn half-written part")
        resumed = dict(multitable_fitted.iter_sample_database(
            seed=5, spool=spool, resume=True))
        assert resumed == reference
        assert _dir_bytes(spool) == _dir_bytes(reference_spool)

    def test_resume_skips_completed_tables(self, multitable_fitted, tmp_path,
                                           monkeypatch):
        spool = tmp_path / "spool"
        iterator = multitable_fitted.iter_sample_database(seed=5, spool=spool)
        first_name, _ = next(iterator)
        iterator.close()
        assert part_table_is_complete(spool / first_name)
        completed_mtime = (spool / first_name / "manifest.json").stat().st_mtime_ns
        resumed = dict(multitable_fitted.iter_sample_database(
            seed=5, spool=spool, resume=True))
        assert set(resumed) == {"users", "orders"}
        # the completed table was adopted, not regenerated: manifest untouched
        assert (spool / first_name / "manifest.json").stat().st_mtime_ns == completed_mtime
