"""Cross-table connecting study: from two child tables to one low-noise table.

Run with::

    python examples/cross_table_connecting_study.py

The script reproduces the Fig. 4 walk-through on the toy Yin/Grace/Anson
tables and then compares the three multi-table strategies (direct flattening,
DEREC-style independent modelling, GReaTER's cross-table connecting) on a
small DIGIX-like trial.
"""

from repro.connecting import (
    BootstrapAppender,
    ConnectorConfig,
    CrossTableConnector,
    ThresholdSeparation,
    direct_flatten,
    flattening_report,
    reduce_dimension,
)
from repro.datasets import DigixConfig, fig4_child_tables, generate_digix_like
from repro.evaluation import FidelityEvaluator
from repro.pipelines import (
    DERECPipeline,
    DirectFlattenPipeline,
    GReaTERPipeline,
    PipelineConfig,
)


def toy_walkthrough():
    print("=== Fig. 4 walk-through on the toy tables ===")
    meals, viewing, subject = fig4_child_tables()
    flattened = direct_flatten(meals, viewing, subject)
    report = flattening_report(meals, viewing, flattened, subject)
    print("direct flattening: {} x {} table, most engaged subject holds {:.0%} of the rows".format(
        report.rows_flattened, report.columns_flattened, report.max_subject_share))

    # step 1: determine which columns are independent of everything else
    separation = ThresholdSeparation(threshold="mean")
    independence = separation.determine(
        flattened, [name for name in flattened.column_names if name != subject])
    print("independent columns:", list(independence.independent_columns))

    # step 2: remove them and drop the duplicate rows this exposes
    reduced, reduction = reduce_dimension(flattened, independence.independent_columns)
    print("dimension reduction removed {} duplicate row(s)".format(reduction.rows_removed))

    # step 3: bootstrap-append the independent columns from per-subject pools
    appender = BootstrapAppender(subject_column=subject, seed=0).fit(
        flattened, independence.independent_columns)
    connected = appender.append(reduced)
    print("connected table: {} x {}; per-subject validity holds: {}".format(
        connected.num_rows, connected.num_columns, appender.validates(connected)))
    print()


def pipeline_comparison():
    print("=== Pipeline comparison on a DIGIX-like trial ===")
    dataset = generate_digix_like(DigixConfig(
        n_tasks=1, n_users_per_task=10, ads_rows_per_user=(2, 4),
        feeds_rows_per_user=(2, 4), seed=5,
    ))
    trial = dataset.trials()[0]

    def config(method="threshold_mean"):
        return PipelineConfig(
            drop_columns=("task_id",),
            connector=ConnectorConfig(independence_method=method, remove_noisy_columns=False),
            seed=0,
        )

    pipelines = {
        "direct flattening": DirectFlattenPipeline(config()),
        "DEREC (independent child tables)": DERECPipeline(config()),
        "GReaTER cross-table connecting": GReaTERPipeline(config()),
    }
    evaluator = FidelityEvaluator()
    for name, pipeline in pipelines.items():
        result = pipeline.run(trial.ads, trial.feeds)
        report = evaluator.evaluate(result.original_flat, result.synthetic_flat, label=name)
        summary = report.summary()
        print("{:36s} mean p-value = {:.3f}   mean W-distance = {:.3f}".format(
            name, summary["mean_p_value"], summary["mean_w_distance"]))
    print("\nHigher p-values / lower W-distances indicate the synthetic data preserves")
    print("the original cross-table conditional structure better.")


def main():
    toy_walkthrough()
    pipeline_comparison()


if __name__ == "__main__":
    main()
