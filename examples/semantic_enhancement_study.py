"""Semantic-enhancement study: how label semantics change what the LLM backbone sees.

Run with::

    python examples/semantic_enhancement_study.py

The script walks through the Fig. 2 / Fig. 3 story on the toy table:

1. show the ambiguous textual encoding ('1' used by three unrelated columns)
   and the token collisions it produces;
2. apply the differentiability-based and understandability-based
   transformations and show the enhanced encodings;
3. fine-tune the backbone on each variant and compare how well the sampled
   rows preserve a conditional relationship of the original table;
4. inverse-map the synthetic output and show it returns in the original
   label format, then destroy the mapping (the Sec. 3.2.3 privacy step).
"""

from repro.datasets.toy import fig2_single_table
from repro.enhancement import (
    DataSemanticEnhancer,
    EnhancerConfig,
    MappingError,
)
from repro.evaluation import FidelityEvaluator
from repro.great import GReaTConfig, GReaTSynthesizer
from repro.llm.finetune import FineTuneConfig
from repro.llm.ngram_model import ModelConfig
from repro.llm.tokenizer import WordTokenizer
from repro.textenc import EncoderConfig, TextualEncoder


def show_token_collisions(table, title):
    tokenizer = WordTokenizer()
    labeled = [(name, value) for name in table.column_names for value in table.column(name)]
    collisions = tokenizer.token_collisions(labeled)
    print("{}: {} surface token(s) shared across columns".format(title, len(collisions)))
    for token, columns in sorted(collisions.items()):
        print("   token {!r} appears in columns {}".format(token, columns))


def synthesize_and_score(table, label, seed=0):
    config = GReaTConfig(
        fine_tune=FineTuneConfig(epochs=5, batches=2, model=ModelConfig(order=5)),
        seed=seed,
    )
    synthesizer = GReaTSynthesizer(config).fit(table)
    synthetic = synthesizer.sample(40, seed=seed)
    report = FidelityEvaluator(min_conditional_samples=1).evaluate(table, synthetic, label=label)
    print("  {:32s} mean KS p-value = {:.3f}".format(label, report.summary()["mean_p_value"]))
    return synthetic


def main():
    table = fig2_single_table()
    encoder = TextualEncoder(EncoderConfig(permute_features=False))

    print("original encoding of the first row:")
    print("  ", encoder.encode_row(table.row(0), columns=table.column_names))
    show_token_collisions(table, "original table")

    print("\nfidelity of the synthesizer under each semantic level:")
    synthesize_and_score(table, "no mapping (GReaT baseline)")

    results = {}
    for level in ("differentiability", "understandability"):
        enhancer = DataSemanticEnhancer(EnhancerConfig(semantic_level=level, seed=0))
        enhanced = enhancer.fit_transform(
            table, columns=["Lunch", "Dinner", "Access Device", "Genre"]
        )
        print("\n{} encoding of the first row:".format(level))
        print("  ", encoder.encode_row(enhanced.row(0), columns=enhanced.column_names))
        show_token_collisions(enhanced, "{} table".format(level))
        synthetic = synthesize_and_score(enhanced, "{} mapping".format(level))

        restored = enhancer.inverse_transform(synthetic)
        print("  synthetic rows inverse-mapped back to numeric labels, e.g.:",
              restored.row(0))
        enhancer.destroy_mapping()
        try:
            enhancer.inverse_transform(synthetic)
        except MappingError:
            print("  mapping destroyed after synthesis - inverse mapping is no longer possible")
        results[level] = restored

    print("\nBoth transformations eliminate the token collisions; the understandability")
    print("mapping additionally produces labels a pre-trained LLM could reason about.")


if __name__ == "__main__":
    main()
