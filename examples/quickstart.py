"""Quickstart: synthesize a multi-table dataset with GReaTER and score its fidelity.

Run with::

    python examples/quickstart.py

The script generates a small DIGIX-like dataset (two child tables sharing user
IDs), runs the full GReaTER pipeline — contextual parent extraction, data
semantic enhancement, cross-table connecting, parent/child synthesis, inverse
mapping — and prints the distribution-of-distribution fidelity of the
synthetic output against the original data.
"""

from repro.connecting import ConnectorConfig
from repro.datasets import DigixConfig, generate_digix_like
from repro.enhancement import EnhancerConfig
from repro.evaluation import FidelityEvaluator
from repro.pipelines import GReaTERPipeline, PipelineConfig


def main():
    # 1. a small multi-table dataset: an ads table and a feeds table sharing user_id
    dataset = generate_digix_like(DigixConfig(
        n_tasks=1,
        n_users_per_task=12,
        ads_rows_per_user=(2, 4),
        feeds_rows_per_user=(2, 4),
        seed=7,
    ))
    trial = dataset.trials()[0]
    print("ads table:   {} rows x {} columns".format(*trial.ads.shape))
    print("feeds table: {} rows x {} columns".format(*trial.feeds.shape))

    # 2. the GReaTER pipeline: understandability-based semantic enhancement plus
    #    the 'up-and-stay' threshold cross-table connecting method
    config = PipelineConfig(
        subject_column="user_id",
        drop_columns=("task_id",),
        enhancer=EnhancerConfig(semantic_level="understandability"),
        connector=ConnectorConfig(independence_method="threshold_mean",
                                  remove_noisy_columns=False),
        seed=0,
    )
    pipeline = GReaTERPipeline(config)
    result = pipeline.run(trial.ads, trial.feeds)

    print("\nsynthetic flat table: {} rows x {} columns".format(*result.synthetic_flat.shape))
    print("independent columns re-appended by bootstrap sampling:",
          result.details["independent_columns"])
    print("columns given semantically enhanced labels:", result.details["mapped_columns"])

    print("\nfirst synthetic rows (original label space):")
    for row in result.synthetic_flat.head(3).iter_rows():
        print("  ", row)

    # 3. fidelity: the distribution-of-distribution similarity of Sec. 4.1.3
    report = FidelityEvaluator().evaluate(result.original_flat, result.synthetic_flat,
                                          label="greater")
    summary = report.summary()
    print("\nfidelity over {} column pairs:".format(int(summary["n_pairs"])))
    print("  mean KS p-value      : {:.3f}".format(summary["mean_p_value"]))
    print("  pairs with p > 0.05  : {:.1%}".format(report.fraction_above(0.05)))
    print("  mean Wasserstein dist: {:.3f}".format(summary["mean_w_distance"]))


if __name__ == "__main__":
    main()
